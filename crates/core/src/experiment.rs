//! Experiment harness: run kernel ladders on simulated devices.
//!
//! These functions connect the three layers of the reproduction: a kernel
//! trace generator (`transpose::traced`, `blur::traced`, `stream`), a
//! scheduling plan (`membound_parallel::Schedule::plan`) that assigns
//! outer iterations to simulated cores exactly as OpenMP would, and the
//! device model (`membound_sim::Machine`).

use crate::blur::{BlurConfig, BlurTrace, BlurVariant};
use crate::gbmv::{traced::GbmvTrace, GbmvConfig, GbmvVariant};
use crate::stream::{StreamOp, StreamTrace};
use crate::transpose::{traced::TransposeTrace, TransposeConfig, TransposeVariant};
use membound_parallel::JobBudget;
use membound_sim::{DeviceSpec, Machine, SimReport};
use membound_trace::TraceSink;
use serde::{Deserialize, Serialize};

/// Simulate one transposition variant on a device, replaying simulated
/// cores serially on the calling thread.
///
/// Returns `None` when the matrix does not fit in device memory — exactly
/// the missing Mango Pi bars in the 16384² panel of Fig. 2.
///
/// # Example
///
/// ```
/// use membound_core::experiment::simulate_transpose;
/// use membound_core::{TransposeConfig, TransposeVariant};
/// use membound_sim::Device;
///
/// let cfg = TransposeConfig::with_block(512, 32);
/// let report = simulate_transpose(
///     &Device::MangoPiMqPro.spec(),
///     TransposeVariant::Blocking,
///     cfg,
/// )
/// .expect("512x512 fits in 1 GB");
/// assert!(report.seconds > 0.0);
/// ```
#[must_use]
pub fn simulate_transpose(
    spec: &DeviceSpec,
    variant: TransposeVariant,
    cfg: TransposeConfig,
) -> Option<SimReport> {
    simulate_transpose_budgeted(spec, variant, cfg, &JobBudget::serial())
}

/// [`simulate_transpose`] with per-core replay fanned out across host
/// workers leased from `budget`. Simulated results and digests are
/// bit-identical to the serial variant; only host wall time changes.
#[must_use]
pub fn simulate_transpose_budgeted(
    spec: &DeviceSpec,
    variant: TransposeVariant,
    cfg: TransposeConfig,
    budget: &JobBudget,
) -> Option<SimReport> {
    if !spec.fits_in_memory(cfg.matrix_bytes()) {
        return None;
    }
    let machine = Machine::new(spec.clone()).with_budget(budget.clone());
    let trace = TransposeTrace::new(cfg);
    let threads = if variant.is_parallel() { spec.cores } else { 1 };
    let total = trace.outer_iterations(variant);
    let plan = variant
        .schedule()
        .plan(total, threads, |i| trace.weight(variant, i));
    Some(machine.simulate(threads, |tid, sink| {
        for range in &plan[tid as usize] {
            trace.trace_outer(variant, sink, tid, range.start, range.end);
        }
    }))
}

/// [`simulate_transpose`] on a reference machine built with
/// [`Machine::without_fastpath`]: the same trace, but every strided batch
/// is dispatched through the per-element trait defaults instead of the
/// bulk executors (and repeat lines are never armed). Its `stats_digest`
/// must equal the batched run's — the CI bench-smoke strided gate and
/// `membound-cli strided-gate` enforce exactly that.
#[must_use]
pub fn simulate_transpose_reference(
    spec: &DeviceSpec,
    variant: TransposeVariant,
    cfg: TransposeConfig,
) -> Option<SimReport> {
    if !spec.fits_in_memory(cfg.matrix_bytes()) {
        return None;
    }
    let machine = Machine::new(spec.clone()).without_fastpath();
    let trace = TransposeTrace::new(cfg);
    let threads = if variant.is_parallel() { spec.cores } else { 1 };
    let total = trace.outer_iterations(variant);
    let plan = variant
        .schedule()
        .plan(total, threads, |i| trace.weight(variant, i));
    Some(machine.simulate(threads, |tid, sink| {
        for range in &plan[tid as usize] {
            trace.trace_outer(variant, sink, tid, range.start, range.end);
        }
    }))
}

/// Simulate one band-matrix `gbmv` variant on a device, replaying
/// simulated cores serially on the calling thread.
///
/// Returns `None` when the band array plus both vectors do not fit in
/// device memory (the Mango Pi's 1 GB cuts off wide-band configurations
/// exactly like the 16384² transpose panel).
#[must_use]
pub fn simulate_gbmv(
    spec: &DeviceSpec,
    variant: GbmvVariant,
    cfg: GbmvConfig,
) -> Option<SimReport> {
    simulate_gbmv_budgeted(spec, variant, cfg, &JobBudget::serial())
}

/// [`simulate_gbmv`] with per-core replay fanned out across host workers
/// leased from `budget` (digest-identical to the serial variant).
#[must_use]
pub fn simulate_gbmv_budgeted(
    spec: &DeviceSpec,
    variant: GbmvVariant,
    cfg: GbmvConfig,
    budget: &JobBudget,
) -> Option<SimReport> {
    if !spec.fits_in_memory(cfg.footprint_bytes()) {
        return None;
    }
    let machine = Machine::new(spec.clone()).with_budget(budget.clone());
    let trace = GbmvTrace::new(cfg);
    let threads = if variant.is_parallel() { spec.cores } else { 1 };
    let total = trace.outer_iterations(variant);
    let plan = variant
        .schedule()
        .plan(total, threads, |i| trace.weight(variant, i));
    Some(machine.simulate(threads, |tid, sink| {
        for range in &plan[tid as usize] {
            trace.trace_outer(variant, sink, tid, range.start, range.end);
        }
    }))
}

/// [`simulate_gbmv`] on a reference machine built with
/// [`Machine::without_fastpath`], mirroring
/// [`simulate_transpose_reference`]: the naïve variant's anti-diagonal
/// `ab` walk is exactly the constant-stride pattern the bulk executors
/// accelerate, so the strided gate replays one gbmv cell too.
#[must_use]
pub fn simulate_gbmv_reference(
    spec: &DeviceSpec,
    variant: GbmvVariant,
    cfg: GbmvConfig,
) -> Option<SimReport> {
    if !spec.fits_in_memory(cfg.footprint_bytes()) {
        return None;
    }
    let machine = Machine::new(spec.clone()).without_fastpath();
    let trace = GbmvTrace::new(cfg);
    let threads = if variant.is_parallel() { spec.cores } else { 1 };
    let total = trace.outer_iterations(variant);
    let plan = variant
        .schedule()
        .plan(total, threads, |i| trace.weight(variant, i));
    Some(machine.simulate(threads, |tid, sink| {
        for range in &plan[tid as usize] {
            trace.trace_outer(variant, sink, tid, range.start, range.end);
        }
    }))
}

/// Simulate one blur variant on a device, replaying simulated cores
/// serially on the calling thread.
///
/// Sequential variants run on one simulated core; `Parallel` splits both
/// separable passes statically across all cores with a barrier in between
/// (two OpenMP parallel-for regions).
#[must_use]
pub fn simulate_blur(spec: &DeviceSpec, variant: BlurVariant, cfg: BlurConfig) -> SimReport {
    simulate_blur_budgeted(spec, variant, cfg, &JobBudget::serial())
}

/// [`simulate_blur`] with per-core replay fanned out across host workers
/// leased from `budget` (digest-identical to the serial variant).
#[must_use]
pub fn simulate_blur_budgeted(
    spec: &DeviceSpec,
    variant: BlurVariant,
    cfg: BlurConfig,
    budget: &JobBudget,
) -> SimReport {
    let machine = Machine::new(spec.clone()).with_budget(budget.clone());
    let trace = BlurTrace::new(cfg);
    match variant {
        BlurVariant::Naive | BlurVariant::UnitStride => machine.simulate(1, |_tid, sink| {
            trace.trace_2d(variant, sink, 0, trace.output_rows());
        }),
        BlurVariant::OneDimKernels | BlurVariant::Memory => machine.simulate(1, |_tid, sink| {
            trace.trace_pass1(sink, 0, trace.all_rows());
            trace.trace_pass2(variant, sink, 0, trace.output_rows());
        }),
        BlurVariant::Parallel => {
            let threads = spec.cores;
            let plan1 =
                membound_parallel::Schedule::Static.plan(trace.all_rows(), threads, |_| 1.0);
            let plan2 =
                membound_parallel::Schedule::Static.plan(trace.output_rows(), threads, |_| 1.0);
            machine.simulate(threads, |tid, sink| {
                for r in &plan1[tid as usize] {
                    trace.trace_pass1(sink, r.start, r.end);
                }
                sink.barrier();
                for r in &plan2[tid as usize] {
                    trace.trace_pass2(variant, sink, r.start, r.end);
                }
            })
        }
    }
}

/// Simulate the fused-blur extension (see `blur::fused`), replaying
/// simulated cores serially: output bands split statically across all
/// cores, each with its own ring buffer.
#[must_use]
pub fn simulate_fused_blur(spec: &DeviceSpec, cfg: BlurConfig, threads: u32) -> SimReport {
    simulate_fused_blur_budgeted(spec, cfg, threads, &JobBudget::serial())
}

/// [`simulate_fused_blur`] with per-core replay fanned out across host
/// workers leased from `budget` (digest-identical to the serial variant).
#[must_use]
pub fn simulate_fused_blur_budgeted(
    spec: &DeviceSpec,
    cfg: BlurConfig,
    threads: u32,
    budget: &JobBudget,
) -> SimReport {
    let machine = Machine::new(spec.clone()).with_budget(budget.clone());
    let trace = crate::blur::FusedBlurTrace::new(cfg);
    let threads = threads.min(spec.cores).max(1);
    let plan = membound_parallel::Schedule::Static.plan(trace.output_rows(), threads, |_| 1.0);
    machine.simulate(threads, |tid, sink| {
        for r in &plan[tid as usize] {
            trace.trace_band(sink, tid, r.start, r.end);
        }
    })
}

/// One row of the Fig. 1 STREAM survey: a memory level with its four
/// bandwidths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamLevelResult {
    /// Level name ("L1D", "L2", ..., "DRAM").
    pub level: String,
    /// Whether the level is private per core (measured sequentially and
    /// scaled by the core count, as §4.1 prescribes) or shared (measured
    /// with all cores).
    pub private_scaled: bool,
    /// Array elements used per thread.
    pub elements_per_thread: u64,
    /// Bandwidth in GB/s for Copy, Scale, Add, Triad (STREAM order).
    pub gbps: [f64; 4],
}

/// Number of timed passes per STREAM measurement (after one warm-up).
const STREAM_PASSES: usize = 3;

/// Array sizing for a cache level: ~3/4 of capacity across all arrays.
fn cache_level_elements(level_bytes: u64, arrays: u64) -> u64 {
    ((level_bytes * 3 / 4) / (arrays * 8)).max(64)
}

/// Per-thread array sizing for a *shared* cache level: 3/4 of the
/// per-core capacity share, but at least 1.5× the level above so the
/// arrays cannot linger there (when a shared level's per-core share is
/// barely larger than the private level above it — the Xeon's L3 slice vs
/// its L2 — the measurement inevitably blends in some next-level traffic,
/// exactly as on the real part).
fn shared_level_elements(spec: &DeviceSpec, k: usize, threads: u64, arrays: u64) -> u64 {
    let share = spec.caches[k].size_bytes / threads;
    let above = if k > 0 {
        spec.caches[k - 1].size_bytes
    } else {
        0
    };
    let footprint = (share * 3 / 4).max(above * 3 / 2);
    (footprint / (arrays * 8)).max(64)
}

/// Per-thread array sizing for the DRAM level: every *individual* array
/// must comfortably exceed a core's total cache share, or steady-state
/// passes keep the store target resident and dodge its write-allocate and
/// write-back traffic.
fn dram_level_elements(spec: &DeviceSpec, arrays: u64) -> u64 {
    let total_cache: u64 = spec.caches.iter().map(|c| c.size_bytes).sum();
    let per_core_cache = total_cache / u64::from(spec.cores);
    let per_array = (3 * per_core_cache)
        .max(3 << 20)
        .min(spec.dram_capacity_bytes / (2 * u64::from(spec.cores) * arrays));
    (per_array / 8).max(1024)
}

/// Measure one STREAM op against one memory level of a device.
///
/// `level` is a cache index (0 = L1) or `None` for DRAM. Returns GB/s
/// using STREAM's nominal byte counting. Private cache levels are
/// measured on one core and scaled by the core count; shared levels and
/// DRAM are measured with every core active.
#[must_use]
pub fn simulate_stream(spec: &DeviceSpec, op: StreamOp, level: Option<usize>) -> f64 {
    simulate_stream_budgeted(spec, op, level, &JobBudget::serial())
}

/// [`simulate_stream`] with per-core replay fanned out across host
/// workers leased from `budget` (digest-identical to the serial variant).
#[must_use]
pub fn simulate_stream_budgeted(
    spec: &DeviceSpec,
    op: StreamOp,
    level: Option<usize>,
    budget: &JobBudget,
) -> f64 {
    let arrays = u64::from(op.arrays_used());
    let (elements, threads, scale) = match level {
        Some(k) => {
            let cache = &spec.caches[k];
            if cache.shared {
                let elems = shared_level_elements(spec, k, u64::from(spec.cores), arrays);
                (elems, spec.cores, 1.0)
            } else {
                let elems = cache_level_elements(cache.size_bytes, arrays);
                (elems, 1, f64::from(spec.cores))
            }
        }
        None => (dram_level_elements(spec, arrays), spec.cores, 1.0),
    };

    let machine = Machine::new(spec.clone()).with_budget(budget.clone());
    let per_thread = elements; // each simulated core streams its own arrays’ slice
    let report = machine.simulate(threads, |tid, sink| {
        // Each thread works on its own contiguous slice of logically
        // shared arrays: slice k covers [tid*per_thread, (tid+1)*per_thread).
        let trace = StreamTrace::new(op, per_thread * u64::from(threads));
        let lo = u64::from(tid) * per_thread;
        let hi = lo + per_thread;
        for _pass in 0..=STREAM_PASSES {
            trace.trace_pass(sink, lo, hi);
            sink.barrier();
        }
    });

    // Skip the cold warm-up phase; take the best steady-state pass, as
    // STREAM itself does.
    let freq = spec.core.freq_ghz * 1e9;
    let best_phase_seconds = report
        .phases
        .iter()
        .skip(1)
        .map(|p| p.cycles / freq)
        .filter(|&s| s > 0.0)
        .fold(f64::INFINITY, f64::min);
    if !best_phase_seconds.is_finite() {
        return 0.0;
    }
    let nominal = op.nominal_bytes(per_thread * u64::from(threads));
    nominal as f64 / best_phase_seconds / 1e9 * scale
}

/// The full Fig. 1 survey for one device: every cache level plus DRAM,
/// all four STREAM tests.
#[must_use]
pub fn simulate_stream_survey(spec: &DeviceSpec) -> Vec<StreamLevelResult> {
    simulate_stream_survey_budgeted(spec, &JobBudget::serial())
}

/// [`simulate_stream_survey`] with per-core replay fanned out across
/// host workers leased from `budget`.
#[must_use]
pub fn simulate_stream_survey_budgeted(
    spec: &DeviceSpec,
    budget: &JobBudget,
) -> Vec<StreamLevelResult> {
    let mut out = Vec::new();
    for (k, cache) in spec.caches.iter().enumerate() {
        let mut gbps = [0.0; 4];
        for (g, op) in gbps.iter_mut().zip(StreamOp::all()) {
            *g = simulate_stream_budgeted(spec, op, Some(k), budget);
        }
        out.push(StreamLevelResult {
            level: cache.name.clone(),
            private_scaled: !cache.shared,
            elements_per_thread: cache_level_elements(
                cache.size_bytes,
                u64::from(StreamOp::Triad.arrays_used()),
            ),
            gbps,
        });
    }
    let mut gbps = [0.0; 4];
    for (g, op) in gbps.iter_mut().zip(StreamOp::all()) {
        *g = simulate_stream_budgeted(spec, op, None, budget);
    }
    out.push(StreamLevelResult {
        level: "DRAM".into(),
        private_scaled: false,
        elements_per_thread: dram_level_elements(spec, 3),
        gbps,
    });
    out
}

/// The device's STREAM DRAM bandwidth (Triad), the denominator of the
/// §3.3 utilization metric.
#[must_use]
pub fn stream_dram_gbps(spec: &DeviceSpec) -> f64 {
    simulate_stream(spec, StreamOp::Triad, None)
}

/// [`stream_dram_gbps`] with per-core replay fanned out across host
/// workers leased from `budget`.
#[must_use]
pub fn stream_dram_gbps_budgeted(spec: &DeviceSpec, budget: &JobBudget) -> f64 {
    simulate_stream_budgeted(spec, StreamOp::Triad, None, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_sim::Device;

    fn small_transpose(device: Device, variant: TransposeVariant) -> SimReport {
        simulate_transpose(
            &device.spec(),
            variant,
            TransposeConfig::with_block(256, 32),
        )
        .expect("small matrix fits everywhere")
    }

    #[test]
    fn transpose_optimizations_help_on_the_mango_pi() {
        let naive = small_transpose(Device::MangoPiMqPro, TransposeVariant::Naive);
        let manual = small_transpose(Device::MangoPiMqPro, TransposeVariant::ManualBlocking);
        assert!(
            manual.seconds < naive.seconds,
            "manual blocking must beat naive: {} vs {}",
            manual.seconds,
            naive.seconds
        );
    }

    #[test]
    fn transpose_16384_does_not_fit_on_mango_pi() {
        let r = simulate_transpose(
            &Device::MangoPiMqPro.spec(),
            TransposeVariant::Naive,
            TransposeConfig::new(16384),
        );
        assert!(r.is_none());
    }

    #[test]
    fn parallel_transpose_uses_all_cores() {
        // The matrix must exceed the shared L2 (1 MB): below that size the
        // capacity-partitioning approximation of shared caches (see
        // DESIGN.md) unfairly penalizes the parallel run.
        let cfg = TransposeConfig::with_block(1024, 32);
        let spec = Device::RaspberryPi4.spec();
        let r = simulate_transpose(&spec, TransposeVariant::Parallel, cfg).unwrap();
        assert_eq!(r.threads, 4);
        let naive = simulate_transpose(&spec, TransposeVariant::Naive, cfg).unwrap();
        assert_eq!(naive.threads, 1);
        assert!(
            r.seconds < naive.seconds / 1.5,
            "parallel {} vs naive {}",
            r.seconds,
            naive.seconds
        );
    }

    #[test]
    fn gbmv_blocking_beats_naive_on_the_mango_pi() {
        let spec = Device::MangoPiMqPro.spec();
        let cfg = GbmvConfig::with_bands(4096, 64, 64, 256);
        let naive = simulate_gbmv(&spec, GbmvVariant::Naive, cfg).unwrap();
        let blocked = simulate_gbmv(&spec, GbmvVariant::Blocked, cfg).unwrap();
        assert!(
            blocked.seconds < naive.seconds,
            "unit-stride panels must beat the anti-diagonal walk: {} vs {}",
            blocked.seconds,
            naive.seconds
        );
    }

    #[test]
    fn gbmv_wide_band_does_not_fit_on_mango_pi() {
        // 2049 diagonals × 65536 columns × 8 B ≈ 1.07 GB of band storage
        // alone — past the Mango Pi's 1 GB, like the 16384² transpose.
        let cfg = GbmvConfig::with_bands(65536, 1024, 1024, 256);
        let r = simulate_gbmv(&Device::MangoPiMqPro.spec(), GbmvVariant::Naive, cfg);
        assert!(r.is_none());
        assert!(
            simulate_gbmv(&Device::RaspberryPi4.spec(), GbmvVariant::Naive, cfg).is_some(),
            "the same workload fits in the Pi 4's 4 GB"
        );
    }

    /// `gbmv` reads the band exactly once, so once the walk is
    /// unit-stride it is pure DRAM streaming: spreading panels over the
    /// Pi 4's four cores must neither help nor hurt — the paper's
    /// memory-bound-scaling point in miniature. The parallel variant
    /// still beats the latency-bound naïve walk.
    #[test]
    fn parallel_gbmv_uses_all_cores_but_stays_dram_bound() {
        let spec = Device::RaspberryPi4.spec();
        let cfg = GbmvConfig::with_bands(8192, 64, 64, 256);
        let parallel = simulate_gbmv(&spec, GbmvVariant::Parallel, cfg).unwrap();
        assert_eq!(parallel.threads, 4);
        let blocked = simulate_gbmv(&spec, GbmvVariant::Blocked, cfg).unwrap();
        assert_eq!(blocked.threads, 1);
        let ratio = parallel.seconds / blocked.seconds;
        assert!(
            (0.8..=1.05).contains(&ratio),
            "DRAM-bound panels should not scale with cores: parallel {} vs blocked {}",
            parallel.seconds,
            blocked.seconds
        );
        let naive = simulate_gbmv(&spec, GbmvVariant::Naive, cfg).unwrap();
        assert!(
            parallel.seconds < naive.seconds,
            "parallel {} vs naive {}",
            parallel.seconds,
            naive.seconds
        );
    }

    #[test]
    fn blur_ladder_improves_on_xeon() {
        let spec = Device::IntelXeon4310T.spec();
        let cfg = BlurConfig::small(96, 120);
        let naive = simulate_blur(&spec, BlurVariant::Naive, cfg);
        let memory = simulate_blur(&spec, BlurVariant::Memory, cfg);
        assert!(
            memory.seconds < naive.seconds / 3.0,
            "memory variant should be much faster: {} vs {}",
            memory.seconds,
            naive.seconds
        );
    }

    #[test]
    fn parallel_blur_runs_two_phases() {
        let spec = Device::RaspberryPi4.spec();
        let cfg = BlurConfig::small(64, 64);
        let r = simulate_blur(&spec, BlurVariant::Parallel, cfg);
        assert!(r.phases.len() >= 2, "pass barrier must split phases");
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn fused_blur_reduces_dram_traffic_where_the_ring_fits() {
        // The image must exceed the caches (so the Memory variant's tmp
        // round-trip really reaches DRAM) while the F-row ring still fits:
        // the Raspberry Pi 4 with a ~4 MB image is exactly that regime.
        let cfg = BlurConfig::small(507, 636);
        let spec = Device::RaspberryPi4.spec();
        let parallel = simulate_blur(&spec, BlurVariant::Parallel, cfg);
        let fused = simulate_fused_blur(&spec, cfg, spec.cores);
        assert!(
            (fused.dram.bytes_total() as f64) < parallel.dram.bytes_total() as f64 * 0.8,
            "fusion must cut DRAM traffic: {} vs {}",
            fused.dram.bytes_total(),
            parallel.dram.bytes_total()
        );
        assert!(fused.seconds < parallel.seconds);
    }

    #[test]
    fn fused_blur_clamps_thread_count_to_cores() {
        let spec = Device::StarFiveVisionFive.spec();
        let r = simulate_fused_blur(&spec, BlurConfig::small(48, 64), 16);
        assert_eq!(r.threads, 2);
    }

    /// Budgeted replay is a host-side optimization only: digests from
    /// the fanned-out and serial paths must be byte-identical for every
    /// budgeted kernel entry point.
    #[test]
    fn budgeted_kernels_match_serial_digests() {
        let spec = Device::RaspberryPi4.spec();
        let budget = JobBudget::new(4);

        let cfg = TransposeConfig::with_block(512, 32);
        let serial = simulate_transpose(&spec, TransposeVariant::Parallel, cfg).unwrap();
        let fanned =
            simulate_transpose_budgeted(&spec, TransposeVariant::Parallel, cfg, &budget).unwrap();
        assert_eq!(serial.stats_digest(), fanned.stats_digest());
        assert!(fanned.host_workers > 1, "spare budget must be used");

        let bcfg = BlurConfig::small(96, 96);
        let serial = simulate_blur(&spec, BlurVariant::Parallel, bcfg);
        let fanned = simulate_blur_budgeted(&spec, BlurVariant::Parallel, bcfg, &budget);
        assert_eq!(serial.stats_digest(), fanned.stats_digest());

        let serial = simulate_fused_blur(&spec, bcfg, 4);
        let fanned = simulate_fused_blur_budgeted(&spec, bcfg, 4, &budget);
        assert_eq!(serial.stats_digest(), fanned.stats_digest());

        let serial = simulate_stream(&spec, StreamOp::Triad, None);
        let fanned = simulate_stream_budgeted(&spec, StreamOp::Triad, None, &budget);
        assert_eq!(serial.to_bits(), fanned.to_bits());

        let gcfg = GbmvConfig::with_bands(2048, 32, 32, 128);
        let serial = simulate_gbmv(&spec, GbmvVariant::Parallel, gcfg).unwrap();
        let fanned = simulate_gbmv_budgeted(&spec, GbmvVariant::Parallel, gcfg, &budget).unwrap();
        assert_eq!(serial.stats_digest(), fanned.stats_digest());
    }

    /// At 64 simulated cores on the SG2044 (contended DRAM, so every
    /// phase replays), host fan-out must engage and stay
    /// digest-invisible at every `--jobs` level.
    #[test]
    fn sg2044_gbmv_is_jobs_invariant_with_host_fanout() {
        let spec = Device::SophonSG2044.spec();
        let cfg = GbmvConfig::with_bands(2048, 32, 32, 32); // 64 panels, one per core
        let serial = simulate_gbmv(&spec, GbmvVariant::Parallel, cfg).unwrap();
        assert_eq!(serial.threads, 64);
        for jobs in [8u32, 64] {
            let fanned =
                simulate_gbmv_budgeted(&spec, GbmvVariant::Parallel, cfg, &JobBudget::new(jobs))
                    .unwrap();
            assert_eq!(
                serial.stats_digest(),
                fanned.stats_digest(),
                "digest diverged at --jobs {jobs}"
            );
            assert!(fanned.host_workers > 1, "spare budget must be used");
        }
    }

    /// The strided fast path must be an exact optimization for the gbmv
    /// traces too (the naïve anti-diagonal walk is its hardest case).
    #[test]
    fn gbmv_reference_machine_matches_fastpath_digest() {
        let spec = Device::StarFiveVisionFive.spec();
        for variant in GbmvVariant::all() {
            let cfg = GbmvConfig::with_bands(1024, 16, 16, 128);
            let fast = simulate_gbmv(&spec, variant, cfg).unwrap();
            let reference = simulate_gbmv_reference(&spec, variant, cfg).unwrap();
            assert_eq!(
                fast.stats_digest(),
                reference.stats_digest(),
                "{variant}"
            );
        }
    }

    #[test]
    fn stream_dram_bandwidth_is_bounded_by_the_model_peak() {
        for device in Device::all() {
            let spec = device.spec();
            let measured = stream_dram_gbps(&spec);
            let peak = spec.dram_gbps();
            assert!(measured > 0.0, "{device}");
            assert!(
                measured <= peak * 1.05,
                "{device}: measured {measured} exceeds peak {peak}"
            );
            assert!(
                measured >= peak * 0.2,
                "{device}: measured {measured} implausibly low vs peak {peak}"
            );
        }
    }

    #[test]
    fn l1_stream_is_faster_than_dram_stream() {
        for device in [Device::MangoPiMqPro, Device::IntelXeon4310T] {
            let spec = device.spec();
            let l1 = simulate_stream(&spec, StreamOp::Copy, Some(0));
            let dram = simulate_stream(&spec, StreamOp::Copy, None);
            assert!(l1 > dram, "{device}: L1 {l1} should beat DRAM {dram}");
        }
    }

    #[test]
    fn survey_has_one_row_per_level_plus_dram() {
        let spec = Device::StarFiveVisionFive.spec();
        let survey = simulate_stream_survey(&spec);
        assert_eq!(survey.len(), 3); // L1 + L2 + DRAM
        assert_eq!(survey[0].level, "L1D");
        assert_eq!(survey.last().unwrap().level, "DRAM");
        for row in &survey {
            for g in row.gbps {
                assert!(g > 0.0, "{row:?}");
            }
        }
    }
}
