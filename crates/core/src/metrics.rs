//! The paper's §3.3 performance metrics.
//!
//! Three quantities appear in every figure:
//!
//! 1. **computation time** — seconds (native: measured; simulated: model
//!    cycles ÷ frequency);
//! 2. **speedup over the naïve variant** — the labels above the bars of
//!    Figs. 2 and 6;
//! 3. **relative memory-bandwidth utilization** — the paper's dimensionless
//!    `(bytes that must move ÷ time) ÷ STREAM bandwidth` in `[0, 1]`,
//!    plotted in Figs. 3 and 7.

use serde::{Deserialize, Serialize};

/// Speedup of `optimized` over `baseline` (both in seconds).
///
/// Returns 0.0 when the optimized time is not positive (degenerate input),
/// matching "no result" semantics in the reports.
///
/// # Example
///
/// ```
/// use membound_core::metrics::speedup;
///
/// assert_eq!(speedup(10.0, 2.5), 4.0);
/// ```
#[must_use]
pub fn speedup(baseline_seconds: f64, optimized_seconds: f64) -> f64 {
    if optimized_seconds > 0.0 {
        baseline_seconds / optimized_seconds
    } else {
        0.0
    }
}

/// The §3.3 relative memory-bandwidth-utilization metric.
///
/// `nominal_bytes` is the number of bytes the algorithm *must* move
/// between DRAM and the CPU (each distinct input byte once in, each
/// distinct output byte once out), `seconds` the computation time and
/// `stream_gbps` the STREAM-measured DRAM bandwidth of the same device.
/// The paper notes the optimum of 1.0 is usually unreachable; values can
/// exceed 1.0 only when the working set fits in cache (the kernel then
/// beats DRAM speed), which the experiments avoid by sizing workloads
/// larger than the last-level cache.
///
/// # Example
///
/// ```
/// use membound_core::metrics::bandwidth_utilization;
///
/// // Moving 8 GB in 10 s on a 4 GB/s device uses 20% of the channels.
/// let u = bandwidth_utilization(8_000_000_000, 10.0, 4.0);
/// assert!((u - 0.2).abs() < 1e-12);
/// ```
#[must_use]
pub fn bandwidth_utilization(nominal_bytes: u64, seconds: f64, stream_gbps: f64) -> f64 {
    if seconds <= 0.0 || stream_gbps <= 0.0 {
        return 0.0;
    }
    let achieved_gbps = nominal_bytes as f64 / seconds / 1e9;
    achieved_gbps / stream_gbps
}

/// One measured cell of a figure: a kernel variant on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Variant label as used in the paper ("Naive", "Blocking", ...).
    pub variant: String,
    /// Device label.
    pub device: String,
    /// Threads used.
    pub threads: u32,
    /// Computation time in seconds.
    pub seconds: f64,
    /// Speedup over the naïve variant on the same device (1.0 for naïve).
    pub speedup_vs_naive: f64,
    /// §3.3 bandwidth-utilization metric, when applicable.
    pub bandwidth_utilization: Option<f64>,
}

impl Measurement {
    /// Create a measurement with the utilization left unset.
    #[must_use]
    pub fn new(variant: &str, device: &str, threads: u32, seconds: f64) -> Self {
        Self {
            variant: variant.to_owned(),
            device: device.to_owned(),
            threads,
            seconds,
            speedup_vs_naive: 1.0,
            bandwidth_utilization: None,
        }
    }
}

/// Attach speedups-vs-first-entry to a ladder of measurements on one
/// device (the first entry is the naïve baseline, as in Figs. 2 and 6).
pub fn attach_speedups(ladder: &mut [Measurement]) {
    let Some(base) = ladder.first().map(|m| m.seconds) else {
        return;
    };
    for m in ladder.iter_mut() {
        m.speedup_vs_naive = speedup(base, m.seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_basics() {
        assert_eq!(speedup(10.0, 5.0), 2.0);
        assert_eq!(speedup(10.0, 20.0), 0.5);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn utilization_in_unit_range_for_sane_inputs() {
        // 1 GB in 1 s on a 2 GB/s device: 0.5.
        assert!((bandwidth_utilization(1_000_000_000, 1.0, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(bandwidth_utilization(100, 0.0, 2.0), 0.0);
        assert_eq!(bandwidth_utilization(100, 1.0, 0.0), 0.0);
    }

    #[test]
    fn attach_speedups_uses_first_as_baseline() {
        let mut ladder = vec![
            Measurement::new("Naive", "dev", 1, 12.0),
            Measurement::new("Blocking", "dev", 1, 4.0),
            Measurement::new("Dynamic", "dev", 4, 1.5),
        ];
        attach_speedups(&mut ladder);
        assert_eq!(ladder[0].speedup_vs_naive, 1.0);
        assert_eq!(ladder[1].speedup_vs_naive, 3.0);
        assert_eq!(ladder[2].speedup_vs_naive, 8.0);
    }

    #[test]
    fn attach_speedups_on_empty_is_noop() {
        let mut ladder: Vec<Measurement> = Vec::new();
        attach_speedups(&mut ladder);
        assert!(ladder.is_empty());
    }
}
