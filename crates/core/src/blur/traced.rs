//! Trace generators for the blur variants.
//!
//! Probes are emitted at cache-line granularity along each image row (the
//! within-row reuse of the sliding filter window is L1-resident on every
//! modelled device, so only the leading-edge line touches matter for
//! traffic), while the *order* in which rows are interleaved is preserved
//! exactly — that order is what distinguishes the "1D_kernels" vertical
//! pass (F interleaved row streams, too many for any modelled prefetcher)
//! from the "Memory" pass (one sequential stream per tap row).

use super::{BlurConfig, BlurVariant};
use membound_trace::{IterCost, TraceSink};

/// Line size assumed by probe coarsening.
const LINE: u64 = 64;

/// Trace generator for one blur workload.
#[derive(Debug, Clone, Copy)]
pub struct BlurTrace {
    cfg: BlurConfig,
    src: u64,
    tmp: u64,
    dst: u64,
}

impl BlurTrace {
    /// A generator for `cfg` with source, scratch and destination images
    /// in well-separated address regions.
    #[must_use]
    pub fn new(cfg: BlurConfig) -> Self {
        Self {
            cfg,
            src: 0x3000_0000_0000,
            tmp: 0x3100_0000_0000,
            dst: 0x3200_0000_0000,
        }
    }

    /// The workload this generator traces.
    #[must_use]
    pub fn config(&self) -> BlurConfig {
        self.cfg
    }

    /// Bytes per image row.
    fn row_bytes(&self) -> u64 {
        (self.cfg.width * self.cfg.channels * 4) as u64
    }

    /// Output rows of the filtered region (`h - F`), the parallel
    /// dimension of the 2-D variants and of the second separable pass.
    #[must_use]
    pub fn output_rows(&self) -> u64 {
        (self.cfg.height - self.cfg.filter_size) as u64
    }

    /// All image rows (`h`), the parallel dimension of the first
    /// separable pass.
    #[must_use]
    pub fn all_rows(&self) -> u64 {
        self.cfg.height as u64
    }

    fn row_addr(&self, base: u64, row: u64) -> u64 {
        base + row * self.row_bytes()
    }

    /// Sweep one row of `base` with line probes, loading or storing.
    fn sweep_row<S: TraceSink + ?Sized>(&self, sink: &mut S, base: u64, row: u64, write: bool) {
        let addr = self.row_addr(base, row);
        if write {
            sink.store_range(addr, self.row_bytes());
        } else {
            sink.load_range(addr, self.row_bytes());
        }
    }

    /// Emit output rows `lo..hi` of a 2-D variant (`Naive` or
    /// `UnitStride`). The two variants touch the same lines in the same
    /// order; they differ in per-tap issue cost (Listing 4 recomputes
    /// `pos_i`/`pos_j` with multiplications in the innermost loop; the
    /// unit-stride version advances pointers incrementally).
    ///
    /// # Panics
    ///
    /// Panics if called with a separable variant.
    pub fn trace_2d<S: TraceSink + ?Sized>(
        &self,
        variant: BlurVariant,
        sink: &mut S,
        lo: u64,
        hi: u64,
    ) {
        let cost = match variant {
            BlurVariant::Naive => IterCost::new(8, 2).mem(2, 0).elem_bytes(4),
            BlurVariant::UnitStride => IterCost::new(3, 2).mem(2, 0).elem_bytes(4),
            other => panic!("trace_2d is for the 2-D variants, got {other}"),
        };
        let f = self.cfg.filter_size as u64;
        let middle = f / 2;
        let row_bytes = self.row_bytes();
        let line_steps = row_bytes.div_ceil(LINE);
        let taps_per_row =
            (self.cfg.width - self.cfg.filter_size) as u64 * self.cfg.channels as u64 * f * f;
        for i in lo..hi {
            for ls in 0..line_steps {
                let off = ls * LINE;
                let len = LINE.min(row_bytes - off);
                // Leading edge of the sliding window: one new line per
                // filter row. Rows are visited at a constant stride of
                // `row_bytes`, and each segment is line-aligned with
                // `len <= LINE`, so the strided batch expands to exactly
                // the one-probe-per-row stream the `load_range` loop
                // emitted.
                sink.access_strided(
                    self.row_addr(self.src, i) + off,
                    row_bytes as i64,
                    f,
                    len as u32,
                    false,
                );
                sink.store_range(self.row_addr(self.dst, i + middle) + off, len);
            }
            sink.compute(cost, taps_per_row);
        }
    }

    /// Emit rows `lo..hi` of the horizontal pass shared by the separable
    /// variants (`tmp[i] = src[i] ⊛ k`, within-row window).
    pub fn trace_pass1<S: TraceSink + ?Sized>(&self, sink: &mut S, lo: u64, hi: u64) {
        let taps_per_row = (self.cfg.width - self.cfg.filter_size) as u64
            * self.cfg.channels as u64
            * self.cfg.filter_size as u64;
        let cost = IterCost::new(3, 2).mem(2, 0).elem_bytes(4);
        for i in lo..hi {
            self.sweep_row(sink, self.src, i, false);
            self.sweep_row(sink, self.tmp, i, true);
            sink.compute(cost, taps_per_row);
        }
    }

    /// Emit output rows `lo..hi` of the vertical pass.
    ///
    /// * `OneDimKernels`: per line-step, the F tap rows are touched in
    ///   column order — F interleaved streams.
    /// * `Memory` / `Parallel` (Listing 5): per tap row, a full
    ///   unit-stride sweep with row accumulation — one stream at a time,
    ///   vectorizable.
    ///
    /// # Panics
    ///
    /// Panics if called with a 2-D variant.
    pub fn trace_pass2<S: TraceSink + ?Sized>(
        &self,
        variant: BlurVariant,
        sink: &mut S,
        lo: u64,
        hi: u64,
    ) {
        let f = self.cfg.filter_size as u64;
        let middle = f / 2;
        let row_bytes = self.row_bytes();
        let line_steps = row_bytes.div_ceil(LINE);
        let taps_per_row = self.cfg.width as u64 * self.cfg.channels as u64 * f;
        match variant {
            BlurVariant::OneDimKernels => {
                let cost = IterCost::new(4, 2).mem(2, 0).elem_bytes(4);
                for i in lo..hi {
                    for ls in 0..line_steps {
                        let off = ls * LINE;
                        let len = LINE.min(row_bytes - off);
                        // F interleaved tap-row streams, one aligned
                        // single-line probe each — emitted as one
                        // constant-stride batch per line step.
                        sink.access_strided(
                            self.row_addr(self.tmp, i) + off,
                            row_bytes as i64,
                            f,
                            len as u32,
                            false,
                        );
                        sink.store_range(self.row_addr(self.dst, i + middle) + off, len);
                    }
                    sink.compute(cost, taps_per_row);
                }
            }
            BlurVariant::Memory | BlurVariant::Parallel => {
                let cost = IterCost::new(2, 2)
                    .mem(2, 1)
                    .elem_bytes(4)
                    .vectorizable(true);
                for i in lo..hi {
                    for i_f in 0..f {
                        self.sweep_row(sink, self.tmp, i + i_f, false);
                        self.sweep_row(sink, self.dst, i + middle, true);
                    }
                    sink.compute(cost, taps_per_row);
                }
            }
            other => panic!("trace_pass2 is for the separable variants, got {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_trace::TraceBuffer;

    fn cfg() -> BlurConfig {
        BlurConfig {
            height: 64,
            width: 80,
            channels: 3,
            filter_size: 9,
            sigma: None,
        }
    }

    #[test]
    fn two_d_variants_touch_identical_lines_in_identical_order() {
        let t = BlurTrace::new(cfg());
        let mut a = TraceBuffer::new();
        let mut b = TraceBuffer::new();
        t.trace_2d(BlurVariant::Naive, &mut a, 0, t.output_rows());
        t.trace_2d(BlurVariant::UnitStride, &mut b, 0, t.output_rows());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn naive_reads_f_source_rows_per_output_row() {
        let t = BlurTrace::new(cfg());
        let mut buf = TraceBuffer::new();
        t.trace_2d(BlurVariant::Naive, &mut buf, 0, 1);
        let distinct_src_rows: std::collections::BTreeSet<u64> = buf
            .iter()
            .filter(|a| !a.kind.is_write())
            .map(|a| (a.addr - 0x3000_0000_0000) / t.row_bytes())
            .collect();
        assert_eq!(distinct_src_rows.len(), 9, "F tap rows");
    }

    #[test]
    fn pass1_reads_src_writes_tmp() {
        let t = BlurTrace::new(cfg());
        let mut buf = TraceBuffer::new();
        t.trace_pass1(&mut buf, 0, t.all_rows());
        for a in buf.iter() {
            if a.kind.is_write() {
                assert!(a.addr >= 0x3100_0000_0000 && a.addr < 0x3200_0000_0000);
            } else {
                assert!(a.addr < 0x3100_0000_0000);
            }
        }
        // One full row of loads and stores per image row.
        assert_eq!(buf.stats().bytes_loaded, t.all_rows() * t.row_bytes());
        assert_eq!(buf.stats().bytes_stored, t.all_rows() * t.row_bytes());
    }

    #[test]
    fn one_dim_pass2_interleaves_f_streams() {
        let t = BlurTrace::new(cfg());
        let mut buf = TraceBuffer::new();
        t.trace_pass2(BlurVariant::OneDimKernels, &mut buf, 0, 1);
        // The first F probes are loads of F different tmp rows.
        let rows: Vec<u64> = buf
            .iter()
            .take(9)
            .map(|a| (a.addr - 0x3100_0000_0000) / t.row_bytes())
            .collect();
        assert_eq!(rows, (0..9).collect::<Vec<u64>>());
    }

    #[test]
    fn memory_pass2_sweeps_whole_rows_sequentially() {
        let t = BlurTrace::new(cfg());
        let mut buf = TraceBuffer::new();
        t.trace_pass2(BlurVariant::Memory, &mut buf, 0, 1);
        // First row_lines probes all come from tmp row 0 (one sweep).
        let line_steps = t.row_bytes().div_ceil(64) as usize;
        let first_rows: std::collections::BTreeSet<u64> = buf
            .iter()
            .take(line_steps)
            .map(|a| (a.addr - 0x3100_0000_0000) / t.row_bytes())
            .collect();
        assert_eq!(first_rows.len(), 1);
    }

    #[test]
    fn memory_pass2_traffic_includes_accumulation_rereads() {
        let t = BlurTrace::new(cfg());
        let mut buf = TraceBuffer::new();
        t.trace_pass2(BlurVariant::Memory, &mut buf, 0, 1);
        // F sweeps of tmp + F sweeps of dst per output row.
        assert_eq!(buf.stats().bytes_loaded, 9 * t.row_bytes());
        assert_eq!(buf.stats().bytes_stored, 9 * t.row_bytes());
    }

    #[test]
    fn ranges_compose_for_all_emitters() {
        let t = BlurTrace::new(cfg());
        let whole_vs_parts = |f: &dyn Fn(&mut TraceBuffer, u64, u64)| {
            let mut whole = TraceBuffer::new();
            f(&mut whole, 0, 10);
            let mut parts = TraceBuffer::new();
            f(&mut parts, 0, 5);
            f(&mut parts, 5, 10);
            assert_eq!(whole.as_slice(), parts.as_slice());
        };
        whole_vs_parts(&|b, lo, hi| t.trace_2d(BlurVariant::Naive, b, lo, hi));
        whole_vs_parts(&|b, lo, hi| t.trace_pass1(b, lo, hi));
        whole_vs_parts(&|b, lo, hi| t.trace_pass2(BlurVariant::OneDimKernels, b, lo, hi));
        whole_vs_parts(&|b, lo, hi| t.trace_pass2(BlurVariant::Memory, b, lo, hi));
    }

    #[test]
    fn compute_iters_match_tap_counts() {
        let c = cfg();
        let t = BlurTrace::new(c);
        let mut buf = TraceBuffer::new();
        t.trace_2d(BlurVariant::Naive, &mut buf, 0, t.output_rows());
        assert_eq!(buf.stats().compute_iters, c.taps_2d());
    }

    #[test]
    #[should_panic(expected = "trace_2d is for the 2-D variants")]
    fn trace_2d_rejects_separable_variants() {
        let t = BlurTrace::new(cfg());
        let mut buf = TraceBuffer::new();
        t.trace_2d(BlurVariant::Memory, &mut buf, 0, 1);
    }

    #[test]
    #[should_panic(expected = "trace_pass2 is for the separable variants")]
    fn trace_pass2_rejects_2d_variants() {
        let t = BlurTrace::new(cfg());
        let mut buf = TraceBuffer::new();
        t.trace_pass2(BlurVariant::Naive, &mut buf, 0, 1);
    }
}
