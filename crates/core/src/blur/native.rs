//! Host-native implementations of the five blur variants.
//!
//! All variants filter only the region where the full kernel fits (the
//! paper's loop bounds, Listing 4: `i < h - sizeFilter`), leaving an
//! unfiltered border of zeros in the destination; equivalence tests
//! compare interiors.

use super::{BlurConfig, BlurVariant};
use membound_image::Image;
use membound_parallel::{Pool, Schedule, SharedSlice};
use std::time::{Duration, Instant};

/// Blur `src` with the given variant, returning the destination image and
/// the elapsed wall-clock time.
///
/// Sequential variants ignore the pool; `Parallel` splits rows across it.
///
/// # Panics
///
/// Panics if the image shape does not match `cfg`.
///
/// # Example
///
/// ```
/// use membound_core::{blur_native, BlurConfig, BlurVariant};
/// use membound_image::generate;
/// use membound_parallel::Pool;
///
/// let cfg = BlurConfig::small(32, 48);
/// let src = generate::test_pattern(32, 48, 3);
/// let (dst, _time) = blur_native(&src, BlurVariant::Memory, &cfg, &Pool::new(2));
/// assert_eq!(dst.width(), 48);
/// ```
pub fn blur_native(
    src: &Image,
    variant: BlurVariant,
    cfg: &BlurConfig,
    pool: &Pool,
) -> (Image, Duration) {
    assert_eq!(
        (src.height(), src.width(), src.channels()),
        (cfg.height, cfg.width, cfg.channels),
        "image/config shape mismatch"
    );
    let start = Instant::now();
    let dst = match variant {
        BlurVariant::Naive => naive(src, cfg),
        BlurVariant::UnitStride => unit_stride(src, cfg),
        BlurVariant::OneDimKernels => one_dim_kernels(src, cfg),
        BlurVariant::Memory => memory(src, cfg),
        BlurVariant::Parallel => parallel(src, cfg, pool),
    };
    (dst, start.elapsed())
}

/// Listing 4: 2-D kernel, channel loop outside the filter loops, with the
/// per-tap index arithmetic spelled out exactly as in the paper.
fn naive(src: &Image, cfg: &BlurConfig) -> Image {
    let (h, w, cnt_channel) = (cfg.height, cfg.width, cfg.channels);
    let f = cfg.filter_size;
    let middle = f / 2;
    let filter = cfg.kernel_2d();
    let filter = filter.taps();
    let src_data = src.as_slice();
    let mut dst = src.same_shape_zeros();
    let dst_data = dst.as_mut_slice();
    for i in 0..h - f {
        for j in 0..w - f {
            for c in 0..cnt_channel {
                let mut sum = 0.0f32;
                for i_f in 0..f {
                    for j_f in 0..f {
                        let pos_i = (i + i_f) * (w * cnt_channel);
                        let pos_j = (j + j_f) * cnt_channel + c;
                        sum += src_data[pos_i + pos_j] * filter[i_f * f + j_f];
                    }
                }
                let (i_d, j_d) = (i + middle, j + middle);
                dst_data[(i_d * w + j_d) * cnt_channel + c] = sum;
            }
        }
    }
    dst
}

/// The channel loop moved innermost: every memory access is unit-stride.
fn unit_stride(src: &Image, cfg: &BlurConfig) -> Image {
    let (h, w, cnt_channel) = (cfg.height, cfg.width, cfg.channels);
    let f = cfg.filter_size;
    let middle = f / 2;
    let filter = cfg.kernel_2d();
    let filter = filter.taps();
    let src_data = src.as_slice();
    let mut dst = src.same_shape_zeros();
    let dst_data = dst.as_mut_slice();
    let mut sums = [0.0f32; 8];
    for i in 0..h - f {
        for j in 0..w - f {
            sums[..cnt_channel].fill(0.0);
            for i_f in 0..f {
                let row = (i + i_f) * w * cnt_channel + j * cnt_channel;
                for j_f in 0..f {
                    let tap = filter[i_f * f + j_f];
                    let base = row + j_f * cnt_channel;
                    for (c, s) in sums[..cnt_channel].iter_mut().enumerate() {
                        *s += src_data[base + c] * tap;
                    }
                }
            }
            let out = ((i + middle) * w + (j + middle)) * cnt_channel;
            dst_data[out..out + cnt_channel].copy_from_slice(&sums[..cnt_channel]);
        }
    }
    dst
}

/// The horizontal pass shared by the separable variants (including the
/// fused extension), one row at a time:
/// `tmp_row[j+mid, c] = Σ_jf src_row[j+jf, c] · k[jf]`.
pub(super) fn horizontal_pass_row(
    src_row: &[f32],
    tmp_row: &mut [f32],
    cfg: &BlurConfig,
    taps: &[f32],
) {
    let (w, ch) = (cfg.width, cfg.channels);
    let f = cfg.filter_size;
    let middle = f / 2;
    for j in 0..w - f {
        for c in 0..ch {
            let mut sum = 0.0f32;
            let base = j * ch + c;
            for (j_f, &tap) in taps.iter().enumerate() {
                sum += src_row[base + j_f * ch] * tap;
            }
            tmp_row[(j + middle) * ch + c] = sum;
        }
    }
}

/// "1D_kernels": horizontal pass, then a vertical pass that walks each
/// output pixel's column of `tmp` — the paper's "excessive memory access".
fn one_dim_kernels(src: &Image, cfg: &BlurConfig) -> Image {
    let (h, w, ch) = (cfg.height, cfg.width, cfg.channels);
    let f = cfg.filter_size;
    let middle = f / 2;
    let kernel = cfg.kernel_1d();
    let taps = kernel.taps();
    let row_elems_h = w * ch;
    let mut tmp = src.same_shape_zeros();
    for i in 0..h {
        horizontal_pass_row(
            &src.as_slice()[i * row_elems_h..(i + 1) * row_elems_h],
            &mut tmp.as_mut_slice()[i * row_elems_h..(i + 1) * row_elems_h],
            cfg,
            taps,
        );
    }
    let tmp_data = tmp.as_slice();
    let mut dst = src.same_shape_zeros();
    let dst_data = dst.as_mut_slice();
    let row_elems = w * ch;
    for i in 0..h - f {
        for j in 0..w {
            for c in 0..ch {
                let mut sum = 0.0f32;
                for (i_f, &tap) in taps.iter().enumerate() {
                    sum += tmp_data[(i + i_f) * row_elems + j * ch + c] * tap;
                }
                dst_data[(i + middle) * row_elems + j * ch + c] = sum;
            }
        }
    }
    dst
}

/// One vertical tap: `dst_row += src_row * tap` — the unit-stride,
/// auto-vectorizable accumulation loop of Listing 5, shared with the
/// fused extension.
pub(super) fn vertical_tap_accumulate(src_row: &[f32], dst_row: &mut [f32], tap: f32) {
    for (d, &s) in dst_row.iter_mut().zip(src_row) {
        *d += s * tap;
    }
}

/// Listing 5's vertical pass for one output row: accumulate whole rows of
/// `tmp` into the output row — unit-stride and auto-vectorizable.
fn memory_pass_row(tmp: &[f32], dst_row: &mut [f32], cfg: &BlurConfig, taps: &[f32], i: usize) {
    let row_elems = cfg.width * cfg.channels;
    for (i_f, &tap) in taps.iter().enumerate() {
        let src_row = (i + i_f) * row_elems;
        vertical_tap_accumulate(&tmp[src_row..src_row + row_elems], dst_row, tap);
    }
}

/// "Memory": horizontal pass plus the row-accumulating vertical pass.
fn memory(src: &Image, cfg: &BlurConfig) -> Image {
    let h = cfg.height;
    let f = cfg.filter_size;
    let middle = f / 2;
    let kernel = cfg.kernel_1d();
    let taps = kernel.taps();
    let row_elems = cfg.width * cfg.channels;
    let mut tmp = src.same_shape_zeros();
    for i in 0..h {
        horizontal_pass_row(
            &src.as_slice()[i * row_elems..(i + 1) * row_elems],
            &mut tmp.as_mut_slice()[i * row_elems..(i + 1) * row_elems],
            cfg,
            taps,
        );
    }
    let mut dst = src.same_shape_zeros();
    for i in 0..h - f {
        let out = (i + middle) * row_elems;
        memory_pass_row(
            tmp.as_slice(),
            &mut dst.as_mut_slice()[out..out + row_elems],
            cfg,
            taps,
            i,
        );
    }
    dst
}

/// "Parallel": the Memory variant with both passes split over rows
/// (`#pragma omp parallel for`, static schedule — §4.3 notes the work is
/// well balanced).
fn parallel(src: &Image, cfg: &BlurConfig, pool: &Pool) -> Image {
    let h = cfg.height;
    let f = cfg.filter_size;
    let middle = f / 2;
    let kernel = cfg.kernel_1d();
    let taps = kernel.taps();
    let row_elems = cfg.width * cfg.channels;
    let mut tmp = src.same_shape_zeros();
    {
        let shared_tmp = SharedSlice::new(tmp.as_mut_slice());
        let src_data = src.as_slice();
        pool.parallel_for(0..h as u64, Schedule::Static, |i| {
            let i = i as usize;
            // SAFETY: iteration i is the only writer of tmp row i.
            let tmp_row = unsafe { shared_tmp.slice_mut(i * row_elems, row_elems) };
            horizontal_pass_row(
                &src_data[i * row_elems..(i + 1) * row_elems],
                tmp_row,
                cfg,
                taps,
            );
        });
    }
    let mut dst = src.same_shape_zeros();
    {
        let shared_dst = SharedSlice::new(dst.as_mut_slice());
        let tmp_data = tmp.as_slice();
        pool.parallel_for(0..(h - f) as u64, Schedule::Static, |i| {
            let i = i as usize;
            let out = (i + middle) * row_elems;
            // SAFETY: iteration i is the only writer of output row
            // i + middle.
            let dst_row = unsafe { shared_dst.slice_mut(out, row_elems) };
            memory_pass_row(tmp_data, dst_row, cfg, taps, i);
        });
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_image::generate;

    fn cfg_small() -> BlurConfig {
        BlurConfig {
            height: 40,
            width: 50,
            channels: 3,
            filter_size: 9,
            sigma: Some(1.8),
        }
    }

    fn run(variant: BlurVariant, cfg: &BlurConfig, threads: u32) -> Image {
        let src = generate::test_pattern(cfg.height, cfg.width, cfg.channels);
        blur_native(&src, variant, cfg, &Pool::new(threads)).0
    }

    #[test]
    fn all_variants_agree_on_the_interior() {
        let cfg = cfg_small();
        let reference = run(BlurVariant::Naive, &cfg, 1);
        for variant in BlurVariant::all() {
            let out = run(variant, &cfg, 3);
            let diff = reference.max_abs_diff_interior(&out, cfg.filter_size);
            assert!(diff < 2e-5, "{variant} diverges from naive by {diff}");
        }
    }

    #[test]
    fn impulse_response_recovers_the_2d_kernel() {
        let cfg = BlurConfig {
            height: 30,
            width: 30,
            channels: 1,
            filter_size: 5,
            sigma: Some(1.0),
        };
        let mid = 15usize;
        let src = generate::impulse(30, 30, 1, mid, mid, 0);
        let (dst, _) = blur_native(&src, BlurVariant::Naive, &cfg, &Pool::new(1));
        let k = cfg.kernel_2d();
        // The blurred impulse equals the (flipped = symmetric) kernel
        // centred on the impulse.
        for di in 0..5usize {
            for dj in 0..5usize {
                let v = dst.get(mid - 2 + di, mid - 2 + dj, 0);
                assert!(
                    (v - k.tap(4 - di, 4 - dj)).abs() < 1e-6,
                    "tap ({di},{dj}): {v} vs {}",
                    k.tap(4 - di, 4 - dj)
                );
            }
        }
    }

    #[test]
    fn blur_preserves_mean_intensity_in_the_interior() {
        let cfg = cfg_small();
        let src = generate::test_pattern(cfg.height, cfg.width, cfg.channels);
        let (dst, _) = blur_native(&src, BlurVariant::Memory, &cfg, &Pool::new(1));
        // A constant region blurs to itself; the test pattern is smooth,
        // so interior means stay close.
        let f = cfg.filter_size;
        let mut src_sum = 0.0f64;
        let mut dst_sum = 0.0f64;
        let mut count = 0u64;
        for i in f..cfg.height - f {
            for j in f..cfg.width - f {
                for c in 0..cfg.channels {
                    src_sum += f64::from(src.get(i, j, c));
                    dst_sum += f64::from(dst.get(i, j, c));
                    count += 1;
                }
            }
        }
        let (sm, dm) = (src_sum / count as f64, dst_sum / count as f64);
        assert!((sm - dm).abs() < 0.01, "means: {sm} vs {dm}");
    }

    #[test]
    fn parallel_matches_memory_exactly() {
        let cfg = cfg_small();
        let a = run(BlurVariant::Memory, &cfg, 1);
        let b = run(BlurVariant::Parallel, &cfg, 4);
        assert_eq!(a.max_abs_diff(&b), 0.0, "same arithmetic, same result");
    }

    #[test]
    fn single_channel_images_work() {
        let cfg = BlurConfig {
            height: 32,
            width: 32,
            channels: 1,
            filter_size: 7,
            sigma: None,
        };
        let reference = run(BlurVariant::Naive, &cfg, 1);
        let out = run(BlurVariant::Memory, &cfg, 2);
        assert!(reference.max_abs_diff_interior(&out, 7) < 2e-5);
    }

    #[test]
    fn border_stays_zero() {
        let cfg = cfg_small();
        let dst = run(BlurVariant::Naive, &cfg, 1);
        // Row 0 is outside every output window (middle = 4).
        for j in 0..cfg.width {
            for c in 0..cfg.channels {
                assert_eq!(dst.get(0, j, c), 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_shape_rejected() {
        let cfg = cfg_small();
        let src = generate::test_pattern(8, 8, 1);
        let _ = blur_native(&src, BlurVariant::Naive, &cfg, &Pool::new(1));
    }
}
