//! Beyond the paper's ladder: a fused separable blur.
//!
//! The paper's footnote observes that even its best variant trails
//! OpenCV "by several orders of magnitude" (naïve) / a wide margin
//! (optimized). One of the techniques production filters use is *pass
//! fusion*: instead of materializing the whole horizontally-filtered
//! image and re-reading it (the `tmp` round-trip of the "Memory"
//! variant), keep a ring buffer of the last `F` filtered rows and emit
//! each output row as soon as its window is complete. DRAM traffic drops
//! from four image transfers (src in, tmp out, tmp in, dst out) to the
//! compulsory two — *if* the ring (`F` rows) fits in cache, which it does
//! on the Xeon and the Raspberry Pi but not in the RISC-V boards' small
//! hierarchies at full image width. The `whatif_fused` bench quantifies
//! exactly that cliff.

use super::native::{horizontal_pass_row, vertical_tap_accumulate};
use super::BlurConfig;
use membound_image::Image;
use membound_parallel::{Pool, Schedule, SharedSlice};
use membound_trace::{IterCost, TraceSink};
use std::time::{Duration, Instant};

/// Run the fused separable blur natively, parallel over output bands.
///
/// Each thread owns a contiguous band of output rows and recomputes the
/// `F - 1` halo rows its ring buffer needs, so bands are independent.
/// Results are bit-identical to the "Memory" variant's interior (the
/// accumulation order per output row is the same).
///
/// # Panics
///
/// Panics if the image shape does not match `cfg`.
///
/// # Example
///
/// ```
/// use membound_core::{blur_fused_native, blur_native, BlurConfig, BlurVariant};
/// use membound_image::generate;
/// use membound_parallel::Pool;
///
/// let cfg = BlurConfig::small(48, 64);
/// let src = generate::test_pattern(48, 64, 3);
/// let pool = Pool::new(2);
/// let (fused, _) = blur_fused_native(&src, &cfg, &pool);
/// let (memory, _) = blur_native(&src, BlurVariant::Memory, &cfg, &pool);
/// assert!(fused.max_abs_diff_interior(&memory, cfg.filter_size) < 1e-5);
/// ```
pub fn blur_fused_native(src: &Image, cfg: &BlurConfig, pool: &Pool) -> (Image, Duration) {
    assert_eq!(
        (src.height(), src.width(), src.channels()),
        (cfg.height, cfg.width, cfg.channels),
        "image/config shape mismatch"
    );
    let start = Instant::now();
    let h = cfg.height;
    let f = cfg.filter_size;
    let middle = f / 2;
    let kernel = cfg.kernel_1d();
    let taps = kernel.taps();
    let row_elems = cfg.width * cfg.channels;
    let out_rows = (h - f) as u64;

    let mut dst = src.same_shape_zeros();
    {
        let shared_dst = SharedSlice::new(dst.as_mut_slice());
        let src_data = src.as_slice();
        pool.parallel_for_chunks(0..out_rows, Schedule::Static, |band| {
            let lo = band.start as usize;
            let hi = band.end as usize;
            // Ring of the last F horizontally-filtered rows; slot r holds
            // input row (lo + k) with (lo + k) % f == r once warmed.
            let mut ring = vec![0.0f32; f * row_elems];
            // Warm the ring with input rows lo .. lo + f - 1.
            for i in lo..lo + f - 1 {
                horizontal_pass_row(
                    &src_data[i * row_elems..(i + 1) * row_elems],
                    &mut ring[(i % f) * row_elems..(i % f + 1) * row_elems],
                    cfg,
                    taps,
                );
            }
            for o in lo..hi {
                // Complete the window with input row o + f - 1.
                let newest = o + f - 1;
                horizontal_pass_row(
                    &src_data[newest * row_elems..(newest + 1) * row_elems],
                    &mut ring[(newest % f) * row_elems..(newest % f + 1) * row_elems],
                    cfg,
                    taps,
                );
                let out = (o + middle) * row_elems;
                // SAFETY: output row o + middle is written only by
                // band-iteration o, and bands are disjoint.
                let dst_row = unsafe { shared_dst.slice_mut(out, row_elems) };
                for (i_f, &tap) in taps.iter().enumerate() {
                    let ring_row = ((o + i_f) % f) * row_elems;
                    vertical_tap_accumulate(&ring[ring_row..ring_row + row_elems], dst_row, tap);
                }
            }
        });
    }
    (dst, start.elapsed())
}

/// Trace generator for the fused blur.
#[derive(Debug, Clone, Copy)]
pub struct FusedBlurTrace {
    cfg: BlurConfig,
    src: u64,
    dst: u64,
    ring_region: u64,
}

impl FusedBlurTrace {
    /// A generator for `cfg` (addresses disjoint from [`super::BlurTrace`]'s
    /// regions).
    #[must_use]
    pub fn new(cfg: BlurConfig) -> Self {
        Self {
            cfg,
            src: 0x3300_0000_0000,
            dst: 0x3400_0000_0000,
            ring_region: 0x3500_0000_0000,
        }
    }

    /// Output rows (the parallel dimension).
    #[must_use]
    pub fn output_rows(&self) -> u64 {
        (self.cfg.height - self.cfg.filter_size) as u64
    }

    fn row_bytes(&self) -> u64 {
        (self.cfg.width * self.cfg.channels * 4) as u64
    }

    /// Emit output rows `lo..hi` as simulated thread `tid`.
    pub fn trace_band<S: TraceSink + ?Sized>(&self, sink: &mut S, tid: u32, lo: u64, hi: u64) {
        let f = self.cfg.filter_size as u64;
        let middle = f / 2;
        let rb = self.row_bytes();
        let ring = self.ring_region + u64::from(tid) * (1 << 28);
        let ring_row = |r: u64| ring + (r % f) * rb;
        let taps_h = (self.cfg.width - self.cfg.filter_size) as u64 * self.cfg.channels as u64 * f;
        let taps_v = self.cfg.width as u64 * self.cfg.channels as u64 * f;
        let cost_h = IterCost::new(3, 2).mem(2, 0).elem_bytes(4);
        let cost_v = IterCost::new(2, 2)
            .mem(2, 1)
            .elem_bytes(4)
            .vectorizable(true);

        // Warm-up rows.
        for i in lo..lo + f - 1 {
            sink.load_range(self.src + i * rb, rb);
            sink.store_range(ring_row(i), rb);
            sink.compute(cost_h, taps_h);
        }
        for o in lo..hi {
            let newest = o + f - 1;
            sink.load_range(self.src + newest * rb, rb);
            sink.store_range(ring_row(newest), rb);
            sink.compute(cost_h, taps_h);
            for i_f in 0..f {
                sink.load_range(ring_row(o + i_f), rb);
                sink.store_range(self.dst + (o + middle) * rb, rb);
            }
            sink.compute(cost_v, taps_v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blur::{blur_native, BlurVariant};
    use membound_image::generate;
    use membound_trace::TraceBuffer;

    fn cfg() -> BlurConfig {
        BlurConfig {
            height: 50,
            width: 40,
            channels: 3,
            filter_size: 9,
            sigma: Some(2.0),
        }
    }

    #[test]
    fn fused_matches_memory_variant_exactly_in_the_interior() {
        let cfg = cfg();
        let src = generate::noise(cfg.height, cfg.width, cfg.channels, 99);
        let pool = Pool::new(1);
        let (fused, _) = blur_fused_native(&src, &cfg, &pool);
        let (memory, _) = blur_native(&src, BlurVariant::Memory, &cfg, &pool);
        let diff = fused.max_abs_diff_interior(&memory, cfg.filter_size);
        assert!(diff < 1e-6, "diff {diff}");
    }

    #[test]
    fn parallel_bands_match_sequential() {
        let cfg = cfg();
        let src = generate::test_pattern(cfg.height, cfg.width, cfg.channels);
        let (seq, _) = blur_fused_native(&src, &cfg, &Pool::new(1));
        let (par, _) = blur_fused_native(&src, &cfg, &Pool::new(4));
        assert_eq!(seq.max_abs_diff(&par), 0.0);
    }

    #[test]
    fn fused_matches_the_naive_reference() {
        let cfg = cfg();
        let src = generate::noise(cfg.height, cfg.width, cfg.channels, 3);
        let pool = Pool::new(2);
        let (fused, _) = blur_fused_native(&src, &cfg, &pool);
        let (reference, _) = blur_native(&src, BlurVariant::Naive, &cfg, &pool);
        assert!(fused.max_abs_diff_interior(&reference, cfg.filter_size) < 1e-4);
    }

    #[test]
    fn trace_reads_each_source_row_once_per_band() {
        let cfg = cfg();
        let t = FusedBlurTrace::new(cfg);
        let mut buf = TraceBuffer::new();
        t.trace_band(&mut buf, 0, 0, t.output_rows());
        let src_bytes: u64 = buf
            .iter()
            .filter(|a| !a.kind.is_write() && a.addr < 0x3400_0000_0000)
            .map(|a| u64::from(a.size))
            .sum();
        // Rows 0 .. h - 1 read exactly once: (out_rows + f - 1) rows.
        let rows_read = t.output_rows() + cfg.filter_size as u64 - 1;
        assert_eq!(src_bytes, rows_read * t.row_bytes());
    }

    #[test]
    fn trace_dst_traffic_is_f_accumulation_sweeps_per_row() {
        let cfg = cfg();
        let t = FusedBlurTrace::new(cfg);
        let mut buf = TraceBuffer::new();
        t.trace_band(&mut buf, 0, 0, 1);
        let dst_writes: u64 = buf
            .iter()
            .filter(|a| a.kind.is_write() && (0x3400_0000_0000..0x3500_0000_0000).contains(&a.addr))
            .map(|a| u64::from(a.size))
            .sum();
        assert_eq!(dst_writes, cfg.filter_size as u64 * t.row_bytes());
    }

    #[test]
    fn distinct_tids_use_distinct_rings() {
        let cfg = cfg();
        let t = FusedBlurTrace::new(cfg);
        let ring_of = |tid: u32| {
            let mut buf = TraceBuffer::new();
            t.trace_band(&mut buf, tid, 0, 1);
            buf.iter()
                .filter(|a| a.addr >= 0x3500_0000_0000)
                .map(|a| a.addr)
                .min()
                .unwrap()
        };
        assert_ne!(ring_of(0), ring_of(1));
    }
}
