//! The Gaussian Blur ladder (§4.3 of the paper).
//!
//! Five variants:
//!
//! | Variant | Paper name | What changes |
//! |---|---|---|
//! | [`BlurVariant::Naive`] | "Naive" (Listing 4) | 2-D kernel, channel loop outside the filter loops |
//! | [`BlurVariant::UnitStride`] | "Unit-stride" | channel loop innermost → unit-stride access |
//! | [`BlurVariant::OneDimKernels`] | "1D_kernels" (Eq. 1) | separable kernel, `O(F²) → O(F)` work |
//! | [`BlurVariant::Memory`] | "Memory" (Listing 5) | second pass restructured to whole-row accumulation |
//! | [`BlurVariant::Parallel`] | "Parallel" | the Memory variant with both passes parallelized |
//!
//! Each variant runs natively on [`membound_image::Image`]s and as a trace
//! generator for the device simulator.

mod fused;
mod native;
mod traced;

pub use fused::{blur_fused_native, FusedBlurTrace};
pub use native::blur_native;
pub use traced::BlurTrace;

use membound_image::{Gaussian1D, Gaussian2D};

/// The five §4.3 variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlurVariant {
    /// Listing 4: 2-D kernel, channel loop outside the filter loops.
    Naive,
    /// Channel loop innermost, making the filter sweep unit-stride.
    UnitStride,
    /// Two 1-D kernels (Eq. 1): horizontal then vertical pass.
    OneDimKernels,
    /// Listing 5: the vertical pass accumulates whole rows (unit-stride,
    /// vectorizable).
    Memory,
    /// The Memory variant with both passes parallelized over rows.
    Parallel,
}

impl BlurVariant {
    /// All five variants in the paper's presentation order.
    #[must_use]
    pub fn all() -> [BlurVariant; 5] {
        [
            BlurVariant::Naive,
            BlurVariant::UnitStride,
            BlurVariant::OneDimKernels,
            BlurVariant::Memory,
            BlurVariant::Parallel,
        ]
    }

    /// The paper's bar label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BlurVariant::Naive => "Naive",
            BlurVariant::UnitStride => "Unit-stride",
            BlurVariant::OneDimKernels => "1D_kernels",
            BlurVariant::Memory => "Memory",
            BlurVariant::Parallel => "Parallel",
        }
    }

    /// Whether the variant uses more than one thread when available.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        matches!(self, BlurVariant::Parallel)
    }

    /// Whether the variant uses the separable (two-pass) formulation.
    #[must_use]
    pub fn is_separable(self) -> bool {
        !matches!(self, BlurVariant::Naive | BlurVariant::UnitStride)
    }
}

impl std::fmt::Display for BlurVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Workload parameters for one blur experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlurConfig {
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Interleaved channels (the paper uses 3).
    pub channels: usize,
    /// Gaussian kernel size `F` (the paper uses 19).
    pub filter_size: usize,
    /// Gaussian σ; the OpenCV-style default when `None`.
    pub sigma: Option<f64>,
}

impl BlurConfig {
    /// The paper's workload: 2544 × 2027 colour image, F = 19.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            height: membound_image::generate::PAPER_HEIGHT,
            width: membound_image::generate::PAPER_WIDTH,
            channels: 3,
            filter_size: membound_image::generate::PAPER_FILTER_SIZE,
            sigma: None,
        }
    }

    /// A scaled-down workload with the same filter size (for quick runs).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions cannot accommodate the filter.
    #[must_use]
    pub fn small(height: usize, width: usize) -> Self {
        let cfg = Self {
            height,
            width,
            channels: 3,
            filter_size: membound_image::generate::PAPER_FILTER_SIZE,
            sigma: None,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(
            self.height > self.filter_size && self.width > self.filter_size,
            "image must be larger than the filter"
        );
        assert!(self.filter_size % 2 == 1, "filter size must be odd");
    }

    /// The σ actually used (explicit or OpenCV default).
    #[must_use]
    pub fn sigma_value(&self) -> f64 {
        match self.sigma {
            Some(s) => s,
            None => 0.3 * ((self.filter_size as f64 - 1.0) * 0.5 - 1.0) + 0.8,
        }
    }

    /// The 1-D kernel for the separable variants.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`BlurConfig::small`]).
    #[must_use]
    pub fn kernel_1d(&self) -> Gaussian1D {
        self.validate();
        Gaussian1D::new(self.filter_size, self.sigma_value())
    }

    /// The 2-D kernel for the naïve variants.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`BlurConfig::small`]).
    #[must_use]
    pub fn kernel_2d(&self) -> Gaussian2D {
        self.validate();
        Gaussian2D::new(self.filter_size, self.sigma_value())
    }

    /// Image footprint in bytes (one image).
    #[must_use]
    pub fn image_bytes(&self) -> u64 {
        (self.height * self.width * self.channels * 4) as u64
    }

    /// Bytes that must move between CPU and DRAM: read the source once,
    /// write the destination once (§3.3 numerator).
    #[must_use]
    pub fn nominal_bytes(&self) -> u64 {
        2 * self.image_bytes()
    }

    /// Number of filter taps the 2-D formulation evaluates
    /// (`(h-F)(w-F) · C · F²`, the paper's complexity expression).
    #[must_use]
    pub fn taps_2d(&self) -> u64 {
        let h = (self.height - self.filter_size) as u64;
        let w = (self.width - self.filter_size) as u64;
        h * w * self.channels as u64 * (self.filter_size * self.filter_size) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<&str> = BlurVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec!["Naive", "Unit-stride", "1D_kernels", "Memory", "Parallel"]
        );
    }

    #[test]
    fn only_parallel_is_parallel() {
        for v in BlurVariant::all() {
            assert_eq!(v.is_parallel(), v == BlurVariant::Parallel, "{v}");
        }
    }

    #[test]
    fn separability_classification() {
        assert!(!BlurVariant::Naive.is_separable());
        assert!(!BlurVariant::UnitStride.is_separable());
        assert!(BlurVariant::OneDimKernels.is_separable());
        assert!(BlurVariant::Memory.is_separable());
        assert!(BlurVariant::Parallel.is_separable());
    }

    #[test]
    fn paper_config_matches_section_4_3() {
        let cfg = BlurConfig::paper();
        assert_eq!((cfg.height, cfg.width), (2027, 2544));
        assert_eq!(cfg.filter_size, 19);
        assert_eq!(cfg.channels, 3);
        assert!((cfg.sigma_value() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn byte_accounting() {
        let cfg = BlurConfig::small(100, 200);
        assert_eq!(cfg.image_bytes(), 100 * 200 * 3 * 4);
        assert_eq!(cfg.nominal_bytes(), 2 * cfg.image_bytes());
        assert_eq!(cfg.taps_2d(), 81 * 181 * 3 * 361);
    }

    #[test]
    fn kernels_have_the_configured_size() {
        let cfg = BlurConfig::small(64, 64);
        assert_eq!(cfg.kernel_1d().len(), 19);
        assert_eq!(cfg.kernel_2d().size(), 19);
    }

    #[test]
    #[should_panic(expected = "larger than the filter")]
    fn too_small_image_rejected() {
        let _ = BlurConfig::small(10, 100);
    }
}
