//! Paper-style text tables and machine-readable result rows.

use serde::Serialize;
use std::fmt::Write as _;

/// A simple fixed-width text table, used by the figure-regeneration
/// binaries to print the same rows the paper's figures plot.
///
/// # Example
///
/// ```
/// use membound_core::report::TextTable;
///
/// let mut t = TextTable::new(vec!["device".into(), "time [s]".into()]);
/// t.row(vec!["Mango Pi".into(), "12.5".into()]);
/// let s = t.render();
/// assert!(s.contains("Mango Pi"));
/// assert!(s.contains("time [s]"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the table width.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<width$}");
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// One bar: label, value, annotation.
type Bar = (String, f64, String);

/// A grouped horizontal bar chart rendered in ASCII — the closest a
/// terminal gets to the paper's figures. Bars are normalized per group
/// (each device's ladder scales to its own slowest variant), which is how
/// the paper's per-device panels read.
///
/// # Example
///
/// ```
/// use membound_core::report::BarChart;
///
/// let mut chart = BarChart::new("time");
/// chart.bar("Mango Pi", "Naive", 12.0, "12.0 s");
/// chart.bar("Mango Pi", "Blocking", 3.0, "x4.0");
/// let s = chart.render(40);
/// assert!(s.contains("Mango Pi"));
/// assert!(s.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    value_label: String,
    groups: Vec<(String, Vec<Bar>)>,
}

impl BarChart {
    /// A chart whose bars represent `value_label`.
    #[must_use]
    pub fn new(value_label: &str) -> Self {
        Self {
            value_label: value_label.to_owned(),
            groups: Vec::new(),
        }
    }

    /// Add a bar to `group` (groups appear in first-insertion order).
    /// `annotation` is printed after the bar (the paper uses the naïve
    /// time and per-variant speedups there).
    pub fn bar(&mut self, group: &str, label: &str, value: f64, annotation: &str) {
        let entry = (label.to_owned(), value.max(0.0), annotation.to_owned());
        if let Some((_, bars)) = self.groups.iter_mut().find(|(g, _)| g == group) {
            bars.push(entry);
        } else {
            self.groups.push((group.to_owned(), vec![entry]));
        }
    }

    /// Whether no bars have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Render with bars at most `width` characters long.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        let label_w = self
            .groups
            .iter()
            .flat_map(|(_, bars)| bars.iter())
            .map(|(l, _, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (group, bars) in &self.groups {
            let _ = writeln!(out, "{group}  [{}]", self.value_label);
            let max = bars.iter().map(|&(_, v, _)| v).fold(0.0_f64, f64::max);
            for (label, value, annotation) in bars {
                let n = if max > 0.0 {
                    ((value / max) * width as f64).round() as usize
                } else {
                    0
                };
                let n = if *value > 0.0 { n.max(1) } else { 0 };
                let _ = writeln!(out, "  {label:<label_w$} |{} {annotation}", "#".repeat(n));
            }
            out.push('\n');
        }
        out
    }
}

/// Format seconds compactly (ms below one second).
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a speedup factor like the paper's bar labels ("x12.4").
#[must_use]
pub fn fmt_speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("x{x:.0}")
    } else {
        format!("x{x:.1}")
    }
}

/// Serialize any result rows to pretty JSON (the machine-readable output
/// each figure binary writes next to its text table).
///
/// # Panics
///
/// Panics if serialization fails (the row types in this crate cannot
/// fail to serialize).
#[must_use]
pub fn to_json<T: Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("result rows serialize infallibly")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(vec!["a".into(), "long header".into()]);
        t.row(vec!["wide cell".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // "long header" starts at the same column in both rows.
        let h = lines[0].find("long header").unwrap();
        let c = lines[2].find('x').unwrap();
        assert_eq!(h, c);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec![]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(123.4), "123");
        assert_eq!(fmt_seconds(12.345), "12.35");
        assert_eq!(fmt_seconds(0.5), "500.00ms");
        assert_eq!(fmt_seconds(2e-5), "20.0us");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(12.34), "x12.3");
        assert_eq!(fmt_speedup(123.4), "x123");
    }

    #[test]
    fn json_rows_round_trip() {
        #[derive(serde::Serialize)]
        struct Row {
            device: &'static str,
            seconds: f64,
        }
        let s = to_json(&vec![Row {
            device: "d",
            seconds: 1.0,
        }]);
        assert!(s.contains("\"device\""));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = TextTable::new(vec!["h".into()]);
        assert!(t.is_empty());
        assert!(t.render().starts_with('h'));
    }

    #[test]
    fn bar_chart_normalizes_per_group() {
        let mut c = BarChart::new("time");
        c.bar("A", "slow", 10.0, "");
        c.bar("A", "fast", 5.0, "");
        c.bar("B", "slow", 100.0, "");
        let s = c.render(10);
        // Group A's slow bar: 10 hashes; fast: 5. Group B's own max: 10.
        assert!(s.contains(&"#".repeat(10)));
        let lines: Vec<&str> = s.lines().collect();
        let fast_line = lines.iter().find(|l| l.contains("fast")).unwrap();
        assert_eq!(fast_line.matches('#').count(), 5);
        let b_slow = lines.iter().rposition(|l| l.contains("slow")).unwrap();
        assert_eq!(lines[b_slow].matches('#').count(), 10);
    }

    #[test]
    fn bar_chart_zero_and_tiny_values() {
        let mut c = BarChart::new("x");
        c.bar("g", "zero", 0.0, "");
        c.bar("g", "tiny", 0.001, "");
        c.bar("g", "big", 100.0, "");
        let s = c.render(20);
        let lines: Vec<&str> = s.lines().collect();
        let zero = lines.iter().find(|l| l.contains("zero")).unwrap();
        assert_eq!(zero.matches('#').count(), 0);
        let tiny = lines.iter().find(|l| l.contains("tiny")).unwrap();
        assert_eq!(tiny.matches('#').count(), 1, "nonzero bars stay visible");
    }

    #[test]
    fn bar_chart_annotations_appear() {
        let mut c = BarChart::new("time");
        c.bar("dev", "Naive", 2.0, "12.5 s");
        assert!(c.render(10).contains("12.5 s"));
        assert!(!c.is_empty());
    }
}
