//! Roofline analysis: formalizing "memory-bound".
//!
//! The paper takes for granted that its three kernels are memory-bound on
//! all four devices. The roofline model makes that checkable: a kernel
//! with arithmetic intensity `I` (flops per byte of compulsory DRAM
//! traffic) on a device with peak compute `P` (GFLOP/s) and STREAM
//! bandwidth `B` (GB/s) attains at most `min(P, I·B)`; it is
//! memory-bound iff `I` is below the ridge point `P / B`.
//!
//! # Example
//!
//! ```
//! use membound_core::roofline::{DeviceRoofline, KernelIntensity};
//! use membound_sim::Device;
//!
//! let spec = Device::MangoPiMqPro.spec();
//! let roof = DeviceRoofline::for_device(&spec, 1.3); // measured STREAM GB/s
//! let triad = KernelIntensity::stream_triad();
//! assert!(roof.is_memory_bound(triad.intensity()));
//! ```

use crate::blur::BlurConfig;
use crate::stream::StreamOp;
use crate::transpose::TransposeConfig;
use membound_sim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// A device's roofline: peak compute vs. sustained memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceRoofline {
    /// Peak double-precision-equivalent compute in GFLOP/s across all
    /// cores (issue-width × FMA × vector lanes × frequency).
    pub peak_gflops: f64,
    /// Sustained memory bandwidth in GB/s (STREAM-measured, not nameplate).
    pub stream_gbps: f64,
}

impl DeviceRoofline {
    /// Build from a device model plus its measured STREAM bandwidth.
    ///
    /// Peak compute assumes one FMA pipe per issue slot dedicated to
    /// floating point (a deliberate *upper* bound: if a kernel is
    /// memory-bound against an optimistic peak, it is certainly
    /// memory-bound in reality).
    ///
    /// # Panics
    ///
    /// Panics if `stream_gbps` is not positive.
    #[must_use]
    pub fn for_device(spec: &DeviceSpec, stream_gbps: f64) -> Self {
        assert!(stream_gbps > 0.0, "bandwidth must be positive");
        let lanes = f64::from((spec.core.vector_bytes / 8).max(1));
        let flops_per_cycle = 2.0 * lanes; // one FMA per cycle per lane
        Self {
            peak_gflops: f64::from(spec.cores) * spec.core.freq_ghz * flops_per_cycle,
            stream_gbps,
        }
    }

    /// The ridge point in flops/byte: kernels below it are memory-bound.
    #[must_use]
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops / self.stream_gbps
    }

    /// Attainable GFLOP/s for a kernel of the given intensity.
    #[must_use]
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        (intensity * self.stream_gbps).min(self.peak_gflops)
    }

    /// Whether a kernel of the given intensity is memory-bound here.
    #[must_use]
    pub fn is_memory_bound(&self, intensity: f64) -> bool {
        intensity < self.ridge_intensity()
    }
}

/// Arithmetic intensity of one kernel: useful flops per byte of
/// compulsory DRAM traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelIntensity {
    /// Kernel name for reports.
    pub kernel: String,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes that must move between CPU and DRAM.
    pub bytes: f64,
}

impl KernelIntensity {
    /// Flops per byte.
    ///
    /// # Panics
    ///
    /// Panics if the byte count is zero.
    #[must_use]
    pub fn intensity(&self) -> f64 {
        assert!(self.bytes > 0.0, "kernel must move data");
        self.flops / self.bytes
    }

    /// A STREAM op (per §4.1's table: e.g. Triad does 2 flops per 24
    /// bytes).
    #[must_use]
    pub fn stream(op: StreamOp) -> Self {
        Self {
            kernel: format!("STREAM {}", op.label()),
            flops: f64::from(op.flops_per_iter()),
            bytes: op.bytes_per_iter() as f64,
        }
    }

    /// STREAM Triad, the canonical bandwidth probe.
    #[must_use]
    pub fn stream_triad() -> Self {
        Self::stream(StreamOp::Triad)
    }

    /// In-place transposition: pure data movement, zero flops.
    #[must_use]
    pub fn transpose(cfg: TransposeConfig) -> Self {
        Self {
            kernel: format!("transpose {}x{}", cfg.n, cfg.n),
            flops: 0.0,
            bytes: cfg.nominal_bytes() as f64,
        }
    }

    /// The 2-D blur: `2·F²` flops per pixel-channel over two image
    /// transfers.
    #[must_use]
    pub fn blur_2d(cfg: &BlurConfig) -> Self {
        Self {
            kernel: format!("blur 2-D F={}", cfg.filter_size),
            flops: 2.0 * cfg.taps_2d() as f64,
            bytes: cfg.nominal_bytes() as f64,
        }
    }

    /// The separable blur: `2·2F` flops per pixel-channel (both passes)
    /// over two image transfers plus the scratch round-trip.
    #[must_use]
    pub fn blur_separable(cfg: &BlurConfig) -> Self {
        let pixels = (cfg.height * cfg.width * cfg.channels) as f64;
        Self {
            kernel: format!("blur separable F={}", cfg.filter_size),
            flops: 2.0 * 2.0 * cfg.filter_size as f64 * pixels,
            // src in, tmp out+in, dst out.
            bytes: 2.0 * cfg.nominal_bytes() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_sim::Device;

    fn roof(device: Device) -> DeviceRoofline {
        // Use the measured STREAM bandwidth, as the §3.3 metric does —
        // the Xeon's separable-blur classification genuinely flips
        // between nameplate and measured bandwidth, so the distinction
        // matters.
        let spec = device.spec();
        let bw = crate::experiment::stream_dram_gbps(&spec);
        DeviceRoofline::for_device(&spec, bw)
    }

    #[test]
    fn ridge_points_are_positive_and_ordered_sensibly() {
        let mango = roof(Device::MangoPiMqPro);
        let xeon = roof(Device::IntelXeon4310T);
        assert!(mango.ridge_intensity() > 0.0);
        // The Xeon has far more compute per byte of bandwidth.
        assert!(xeon.ridge_intensity() > mango.ridge_intensity());
    }

    #[test]
    fn stream_and_transpose_are_memory_bound_on_all_devices() {
        let kernels = [
            KernelIntensity::stream(StreamOp::Copy),
            KernelIntensity::stream_triad(),
            KernelIntensity::transpose(TransposeConfig::new(8192)),
        ];
        for &device in Device::all() {
            let r = roof(device);
            for k in &kernels {
                assert!(
                    r.is_memory_bound(k.intensity()),
                    "{device}: {} (I = {:.3}) should be memory-bound (ridge {:.3})",
                    k.kernel,
                    k.intensity(),
                    r.ridge_intensity()
                );
            }
        }
    }

    #[test]
    fn separable_blur_classification_depends_on_the_device() {
        // On the vectorizing Xeon the separable blur is memory-bound; on
        // the scalar single-issue D1 its 4.75 flops/byte exceed the ridge
        // — which is exactly why Fig. 6's Mango Pi blur times are
        // issue-limited in the model.
        let k = KernelIntensity::blur_separable(&BlurConfig::paper());
        assert!(roof(Device::IntelXeon4310T).is_memory_bound(k.intensity()));
        assert!(!roof(Device::MangoPiMqPro).is_memory_bound(k.intensity()));
    }

    #[test]
    fn naive_2d_blur_is_compute_bound_where_the_ladder_predicts() {
        // The 2-D F=19 blur does 361 taps per output element — enough
        // intensity to be compute-bound on the scalar in-order boards,
        // which is exactly why its optimization story is about *both*
        // arithmetic (1D_kernels) and memory (Memory).
        let k = KernelIntensity::blur_2d(&BlurConfig::paper());
        let mango = roof(Device::MangoPiMqPro);
        assert!(
            !mango.is_memory_bound(k.intensity()),
            "2-D blur (I = {:.1}) exceeds the D1 ridge ({:.1})",
            k.intensity(),
            mango.ridge_intensity()
        );
    }

    #[test]
    fn attainable_performance_caps_at_both_roofs() {
        let r = DeviceRoofline {
            peak_gflops: 10.0,
            stream_gbps: 2.0,
        };
        assert_eq!(r.attainable_gflops(1.0), 2.0); // bandwidth roof
        assert_eq!(r.attainable_gflops(100.0), 10.0); // compute roof
        assert_eq!(r.ridge_intensity(), 5.0);
    }

    #[test]
    fn transpose_intensity_is_zero() {
        let k = KernelIntensity::transpose(TransposeConfig::new(1024));
        assert_eq!(k.intensity(), 0.0);
    }

    #[test]
    fn stream_intensities_match_section_4_1() {
        assert_eq!(KernelIntensity::stream(StreamOp::Copy).intensity(), 0.0);
        let triad = KernelIntensity::stream_triad();
        assert!((triad.intensity() - 2.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "move data")]
    fn zero_byte_kernel_rejected() {
        let k = KernelIntensity {
            kernel: "bad".into(),
            flops: 1.0,
            bytes: 0.0,
        };
        let _ = k.intensity();
    }
}
