//! Trace generators for the band-matrix `gbmv` variants.
//!
//! Each variant emits the cache-line-level reference stream its native
//! counterpart performs, through the batched [`TraceSink`] calls so the
//! strided replay pipeline and the analytic executor apply: contiguous
//! spans (`x`, the blocked variants' `ab` segments) go through
//! `load_range`, the naïve variant's anti-diagonal `ab` walk goes
//! through `access_strided` with its constant `(1 - n) × 8`-byte
//! stride, and the `y` accumulations go through `access_strided_rmw`.
//! Instruction issue cost is charged separately via
//! [`membound_trace::IterCost`].

use super::{GbmvConfig, GbmvVariant};
use membound_trace::{IterCost, TraceSink};

/// Base virtual address of the band array `ab`.
const AB_BASE: u64 = 0x3000_0000_0000;
/// Base virtual address of the input vector `x`.
const X_BASE: u64 = 0x3800_0000_0000;
/// Base virtual address of the output vector `y`.
const Y_BASE: u64 = 0x3C00_0000_0000;

/// Trace generator for one `gbmv` workload.
///
/// The harness drives it one *outer iteration range* at a time: rows
/// for [`GbmvVariant::Naive`], row panels for the blocked variants.
/// Iteration ranges map to simulated cores via
/// `membound_parallel::Schedule::plan`.
#[derive(Debug, Clone, Copy)]
pub struct GbmvTrace {
    cfg: GbmvConfig,
}

impl GbmvTrace {
    /// A trace generator for `cfg`, placing `ab`, `x` and `y` in fixed
    /// disjoint address regions.
    #[must_use]
    pub fn new(cfg: GbmvConfig) -> Self {
        Self { cfg }
    }

    /// The workload this generator traces.
    #[must_use]
    pub fn config(&self) -> GbmvConfig {
        self.cfg
    }

    /// Number of outer iterations of `variant`'s outer loop.
    #[must_use]
    pub fn outer_iterations(&self, variant: GbmvVariant) -> u64 {
        match variant {
            GbmvVariant::Naive => self.cfg.n as u64,
            GbmvVariant::Blocked | GbmvVariant::Parallel => self.cfg.panels() as u64,
        }
    }

    /// Relative cost of outer iteration `_i` — uniform: every band row
    /// carries the same work up to the clipped first `kl` and last
    /// `ku` rows.
    #[must_use]
    pub fn weight(&self, _variant: GbmvVariant, _i: u64) -> f64 {
        1.0
    }

    /// Address of `ab[d][j]` (diagonal row `d`, column `j`).
    fn ab_addr(&self, d: u64, j: u64) -> u64 {
        AB_BASE + (d * self.cfg.n as u64 + j) * 8
    }

    /// Emit outer iterations `lo..hi` of `variant` as simulated thread
    /// `_tid` (the kernel has no thread-private staging, so the id does
    /// not select any address region).
    pub fn trace_outer<S: TraceSink + ?Sized>(
        &self,
        variant: GbmvVariant,
        sink: &mut S,
        _tid: u32,
        lo: u64,
        hi: u64,
    ) {
        match variant {
            GbmvVariant::Naive => {
                for i in lo..hi {
                    self.trace_row(sink, i);
                }
            }
            GbmvVariant::Blocked | GbmvVariant::Parallel => {
                for p in lo..hi {
                    self.trace_panel(sink, p);
                }
            }
        }
    }

    /// The textbook row `i`: `y[i] += ab[ku + i - j][j] * x[j]` over the
    /// band columns. Consecutive `j` steps move the `ab` reference one
    /// diagonal row up and one column right — a constant
    /// `(1 - n) × 8`-byte stride, the pattern the blocked variants
    /// exist to fix.
    fn trace_row<S: TraceSink + ?Sized>(&self, sink: &mut S, i: u64) {
        let (n, kl, ku) = (self.cfg.n as u64, self.cfg.kl as u64, self.cfg.ku as u64);
        let jlo = i.saturating_sub(kl);
        let jhi = (i + ku + 1).min(n);
        let len = jhi - jlo;
        let stride = 8 * (1 - n as i64);
        sink.load_range(Y_BASE + i * 8, 8);
        sink.access_strided(self.ab_addr(ku + i - jlo, jlo), stride, len, 8, false);
        sink.load_range(X_BASE + jlo * 8, len * 8);
        sink.store_range(Y_BASE + i * 8, 8);
        // Per band element: one fused multiply-add on two loaded values.
        sink.compute(IterCost::new(2, 2).mem(2, 0).elem_bytes(8), len);
    }

    /// Row panel `p` of the blocked traversal: for each stored diagonal
    /// `d`, the panel's valid rows form one unit-stride run through
    /// `ab` row `d`, a contiguous `x` span and a contiguous `y`
    /// read-modify-write — every reference is now sequential.
    fn trace_panel<S: TraceSink + ?Sized>(&self, sink: &mut S, p: u64) {
        let n = self.cfg.n as u64;
        let blk = self.cfg.block as u64;
        let (r0, r1) = (p * blk, ((p + 1) * blk).min(n));
        for d in 0..self.cfg.diagonals() as u64 {
            // Column of row i on this diagonal: j = i + ku - d.
            let off = self.cfg.ku as i64 - d as i64;
            let i0 = r0.max(u64::try_from(-off).unwrap_or(0));
            let i1 = r1.min(n.saturating_add_signed(-off));
            if i0 >= i1 {
                continue;
            }
            let run = i1 - i0;
            let j0 = i0.wrapping_add_signed(off);
            sink.load_range(self.ab_addr(d, j0), run * 8);
            sink.load_range(X_BASE + j0 * 8, run * 8);
            sink.access_strided_rmw(Y_BASE + i0 * 8, 8, run, 8);
            sink.compute(
                IterCost::new(2, 2).mem(3, 1).elem_bytes(8).vectorizable(true),
                run,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_trace::TraceBuffer;
    use std::collections::BTreeSet;

    const LINE: u64 = 64;

    fn trace_all(variant: GbmvVariant, cfg: GbmvConfig) -> TraceBuffer {
        let t = GbmvTrace::new(cfg);
        let mut buf = TraceBuffer::new();
        t.trace_outer(variant, &mut buf, 0, 0, t.outer_iterations(variant));
        buf
    }

    fn lines_in(buf: &TraceBuffer, base: u64, end: u64) -> BTreeSet<u64> {
        buf.iter()
            .filter(|a| a.addr >= base && a.addr < end)
            .map(|a| a.addr / LINE)
            .collect()
    }

    /// All variants read the same band, the same `x` span and the same
    /// `y` span: they compute the same product.
    #[test]
    fn all_variants_touch_the_same_lines() {
        let cfg = GbmvConfig::with_bands(96, 7, 11, 32);
        let ab_end = AB_BASE + cfg.band_bytes();
        let vec_bytes = (cfg.n * 8) as u64;
        let naive = trace_all(GbmvVariant::Naive, cfg);
        for v in [GbmvVariant::Blocked, GbmvVariant::Parallel] {
            let buf = trace_all(v, cfg);
            assert_eq!(
                lines_in(&buf, AB_BASE, ab_end),
                lines_in(&naive, AB_BASE, ab_end),
                "{v}: ab coverage"
            );
            assert_eq!(
                lines_in(&buf, X_BASE, X_BASE + vec_bytes),
                lines_in(&naive, X_BASE, X_BASE + vec_bytes),
                "{v}: x coverage"
            );
            assert_eq!(
                lines_in(&buf, Y_BASE, Y_BASE + vec_bytes),
                lines_in(&naive, Y_BASE, Y_BASE + vec_bytes),
                "{v}: y coverage"
            );
        }
    }

    /// The naïve inner loop really is an anti-diagonal: its `ab`
    /// references step by `(1 - n) × 8` bytes within each row.
    #[test]
    fn naive_ab_walk_is_anti_diagonal() {
        let cfg = GbmvConfig::with_bands(16, 2, 3, 8);
        let t = GbmvTrace::new(cfg);
        let mut buf = TraceBuffer::new();
        t.trace_outer(GbmvVariant::Naive, &mut buf, 0, 5, 6);
        let ab: Vec<u64> = buf
            .iter()
            .filter(|a| a.addr >= AB_BASE && a.addr < X_BASE)
            .map(|a| a.addr)
            .collect();
        assert_eq!(ab.len(), (cfg.kl + cfg.ku + 1) as usize);
        for pair in ab.windows(2) {
            assert_eq!(
                pair[1].wrapping_sub(pair[0]) as i64,
                8 * (1 - cfg.n as i64)
            );
        }
    }

    /// Both traversals perform the same number of multiply-adds: the
    /// band's element count.
    #[test]
    fn compute_iters_cover_the_band_once() {
        let cfg = GbmvConfig::with_bands(100, 5, 9, 32);
        let band_elems: u64 = (0..cfg.n as u64)
            .map(|i| {
                (i + cfg.ku as u64 + 1).min(cfg.n as u64) - i.saturating_sub(cfg.kl as u64)
            })
            .sum();
        for v in GbmvVariant::all() {
            assert_eq!(
                trace_all(v, cfg).stats().compute_iters,
                band_elems,
                "{v}"
            );
        }
    }

    /// Splitting the outer range must not change the emitted stream.
    #[test]
    fn ranges_compose_to_the_whole() {
        let cfg = GbmvConfig::with_bands(48, 3, 5, 16);
        for v in GbmvVariant::all() {
            let t = GbmvTrace::new(cfg);
            let total = t.outer_iterations(v);
            let mut whole = TraceBuffer::new();
            t.trace_outer(v, &mut whole, 0, 0, total);
            let mut parts = TraceBuffer::new();
            t.trace_outer(v, &mut parts, 0, 0, total / 2);
            t.trace_outer(v, &mut parts, 0, total / 2, total);
            assert_eq!(whole.as_slice(), parts.as_slice(), "{v}");
        }
    }

    /// Clipped edge rows shorten, never lengthen: row 0 sees `ku + 1`
    /// elements, an interior row the full `kl + ku + 1`.
    #[test]
    fn edge_rows_are_clipped() {
        let cfg = GbmvConfig::with_bands(64, 4, 2, 16);
        let t = GbmvTrace::new(cfg);
        let row_iters = |i: u64| {
            let mut buf = TraceBuffer::new();
            t.trace_outer(GbmvVariant::Naive, &mut buf, 0, i, i + 1);
            buf.stats().compute_iters
        };
        assert_eq!(row_iters(0), 3);
        assert_eq!(row_iters(32), 7);
        assert_eq!(row_iters(63), 5);
    }
}
