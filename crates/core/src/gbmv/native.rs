//! Host-native implementations of the `gbmv` variants.

use super::{GbmvConfig, GbmvVariant};
use membound_parallel::{Pool, SharedSlice};
use std::time::{Duration, Instant};

/// A band matrix in LAPACK band storage: row-major
/// `(kl + ku + 1) × n`, dense entry `(i, j)` at `ab[ku + i - j][j]`
/// for `j - ku <= i <= j + kl` (zero outside the band).
#[derive(Debug, Clone, PartialEq)]
pub struct BandMatrix {
    cfg: GbmvConfig,
    ab: Vec<f64>,
}

impl BandMatrix {
    /// The band matrix whose stored entry `(d, j)` is `d * n + j + 1` —
    /// every element distinct and nonzero, so misplaced accumulations
    /// are detectable.
    #[must_use]
    pub fn indexed(cfg: GbmvConfig) -> Self {
        let ab = (0..cfg.diagonals() * cfg.n)
            .map(|k| (k + 1) as f64)
            .collect();
        Self { cfg, ab }
    }

    /// The workload this matrix was built for.
    #[must_use]
    pub fn config(&self) -> GbmvConfig {
        self.cfg
    }

    /// Dense entry `(i, j)`; zero outside the band.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (n, kl, ku) = (self.cfg.n, self.cfg.kl, self.cfg.ku);
        if i >= n || j >= n || i + ku < j || j + kl < i {
            return 0.0;
        }
        self.ab[(ku + i - j) * n + j]
    }

    /// Stored entry of diagonal row `d`, column `j`.
    fn at(&self, d: usize, j: usize) -> f64 {
        self.ab[d * self.cfg.n + j]
    }
}

/// Compute `y = A·x` with the given variant and thread pool, returning
/// the elapsed wall-clock time. `y` is overwritten.
///
/// The `Naive` and `Blocked` variants ignore the pool and run
/// sequentially.
///
/// # Panics
///
/// Panics if `x` or `y` does not have `cfg.n` elements.
pub fn gbmv_native(
    a: &BandMatrix,
    x: &[f64],
    y: &mut [f64],
    variant: GbmvVariant,
    pool: &Pool,
) -> Duration {
    let cfg = a.config();
    assert_eq!(x.len(), cfg.n, "x length mismatch");
    assert_eq!(y.len(), cfg.n, "y length mismatch");
    let start = Instant::now();
    match variant {
        GbmvVariant::Naive => naive(a, x, y),
        GbmvVariant::Blocked => {
            for p in 0..cfg.panels() {
                let (r0, r1) = panel_rows(cfg, p);
                panel(a, x, &mut y[r0..r1], p);
            }
        }
        GbmvVariant::Parallel => {
            let shared = SharedSlice::new(y);
            pool.parallel_for(0..cfg.panels() as u64, variant.schedule(), |p| {
                let p = p as usize;
                let (r0, r1) = panel_rows(cfg, p);
                // SAFETY: panels partition 0..n, so these sub-slices
                // are disjoint across panel owners.
                let y_panel = unsafe { shared.slice_mut(r0, r1 - r0) };
                panel(a, x, y_panel, p);
            });
        }
    }
    start.elapsed()
}

/// Row range `[r0, r1)` of panel `p`.
fn panel_rows(cfg: GbmvConfig, p: usize) -> (usize, usize) {
    (p * cfg.block, ((p + 1) * cfg.block).min(cfg.n))
}

/// Textbook row loop: anti-diagonal walk of `ab` per row.
fn naive(a: &BandMatrix, x: &[f64], y: &mut [f64]) {
    let cfg = a.config();
    let (n, kl, ku) = (cfg.n, cfg.kl, cfg.ku);
    for i in 0..n {
        let jlo = i.saturating_sub(kl);
        let jhi = (i + ku + 1).min(n);
        let mut acc = 0.0;
        for j in jlo..jhi {
            acc += a.at(ku + i - j, j) * x[j];
        }
        y[i] = acc;
    }
}

/// One row panel of the blocked traversal: per stored diagonal, a
/// unit-stride sweep over the panel's valid rows. `y_panel` covers
/// exactly the panel's rows (`y[r0..r1]`).
fn panel(a: &BandMatrix, x: &[f64], y_panel: &mut [f64], p: usize) {
    let cfg = a.config();
    let n = cfg.n;
    let (r0, r1) = panel_rows(cfg, p);
    y_panel.fill(0.0);
    for d in 0..cfg.diagonals() {
        let off = cfg.ku as isize - d as isize;
        let i0 = r0.max(usize::try_from(-off).unwrap_or(0));
        let i1 = r1.min(n.saturating_add_signed(-off));
        for i in i0..i1 {
            let j = i.wrapping_add_signed(off);
            y_panel[i - r0] += a.at(d, j) * x[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference product.
    fn dense_mul(a: &BandMatrix, x: &[f64]) -> Vec<f64> {
        let n = a.config().n;
        (0..n)
            .map(|i| (0..n).map(|j| a.get(i, j) * x[j]).sum())
            .collect()
    }

    fn check(variant: GbmvVariant, n: usize, kl: usize, ku: usize, block: usize, threads: u32) {
        let cfg = GbmvConfig::with_bands(n, kl, ku, block);
        let a = BandMatrix::indexed(cfg);
        let x: Vec<f64> = (0..n).map(|k| (k % 17) as f64 - 8.0).collect();
        let expected = dense_mul(&a, &x);
        let mut y = vec![f64::NAN; n];
        gbmv_native(&a, &x, &mut y, variant, &Pool::new(threads));
        for (i, (got, want)) in y.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() <= want.abs() * 1e-12 + 1e-9,
                "{variant} n={n} kl={kl} ku={ku} block={block}: y[{i}] = {got}, want {want}"
            );
        }
    }

    #[test]
    fn all_variants_match_the_dense_product() {
        for variant in GbmvVariant::all() {
            for (n, kl, ku, block) in [(8, 2, 3, 4), (64, 7, 0, 16), (100, 13, 21, 32)] {
                for threads in [1, 4] {
                    check(variant, n, kl, ku, block, threads);
                }
            }
        }
    }

    #[test]
    fn non_divisible_panels_work() {
        check(GbmvVariant::Blocked, 37, 5, 2, 8, 1);
        check(GbmvVariant::Parallel, 65, 9, 9, 64, 3);
        check(GbmvVariant::Parallel, 63, 1, 1, 64, 2); // single partial panel
    }

    #[test]
    fn diagonal_only_matrix_scales() {
        let cfg = GbmvConfig::with_bands(16, 0, 0, 8);
        let a = BandMatrix::indexed(cfg);
        let x = vec![2.0; 16];
        let mut y = vec![0.0; 16];
        gbmv_native(&a, &x, &mut y, GbmvVariant::Naive, &Pool::new(1));
        for (j, v) in y.iter().enumerate() {
            assert_eq!(*v, 2.0 * (j + 1) as f64);
        }
    }

    #[test]
    fn timing_is_reported() {
        let cfg = GbmvConfig::with_bands(256, 8, 8, 64);
        let a = BandMatrix::indexed(cfg);
        let x = vec![1.0; 256];
        let mut y = vec![0.0; 256];
        let d = gbmv_native(&a, &x, &mut y, GbmvVariant::Blocked, &Pool::new(1));
        assert!(d.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn length_mismatch_rejected() {
        let cfg = GbmvConfig::with_bands(8, 1, 1, 4);
        let a = BandMatrix::indexed(cfg);
        let mut y = vec![0.0; 8];
        let _ = gbmv_native(&a, &[1.0; 4], &mut y, GbmvVariant::Naive, &Pool::new(1));
    }
}
