//! The band-matrix matrix-vector product ladder (`y = A·x`, BLAS
//! `gbmv`), from the group's band-BLAS follow-up to the paper.
//!
//! The matrix is stored in LAPACK band layout: an `(kl + ku + 1) × n`
//! row-major array `ab` whose row `d` holds diagonal `ku - d`, so dense
//! entry `(i, j)` lives at `ab[ku + i - j][j]`. Three variants:
//!
//! | Variant | What changes |
//! |---|---|
//! | [`GbmvVariant::Naive`] | textbook row loop; the inner `j` loop walks `ab` along an anti-diagonal with stride `(1 - n) × 8` bytes |
//! | [`GbmvVariant::Blocked`] | row panels × diagonals: every `ab` access becomes a unit-stride segment |
//! | [`GbmvVariant::Parallel`] | the blocked traversal with row panels scheduled across cores |
//!
//! Every variant exists natively (really multiplies a [`BandMatrix`] on
//! the host) and as a trace generator for the device simulator
//! ([`traced`]).

mod native;
pub mod traced;

pub use native::{gbmv_native, BandMatrix};

use membound_parallel::Schedule;

/// The three band-matrix ladder variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GbmvVariant {
    /// Textbook row loop: for each row, an anti-diagonal walk of `ab`.
    Naive,
    /// Row panels × diagonals: unit-stride `ab` segments, sequential.
    Blocked,
    /// The blocked traversal with row panels statically scheduled
    /// across cores.
    Parallel,
}

impl GbmvVariant {
    /// All three variants in ladder order.
    #[must_use]
    pub fn all() -> [GbmvVariant; 3] {
        [GbmvVariant::Naive, GbmvVariant::Blocked, GbmvVariant::Parallel]
    }

    /// The figure's bar label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GbmvVariant::Naive => "Naive",
            GbmvVariant::Blocked => "Blocked",
            GbmvVariant::Parallel => "Parallel",
        }
    }

    /// Whether the variant uses more than one thread when available.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        matches!(self, GbmvVariant::Parallel)
    }

    /// The OpenMP-style schedule of the variant's outer loop. Band rows
    /// carry near-uniform work (only the first `kl` and last `ku` rows
    /// are clipped), so a static schedule is already balanced.
    #[must_use]
    pub fn schedule(self) -> Schedule {
        Schedule::Static
    }
}

impl std::fmt::Display for GbmvVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Workload parameters for one `gbmv` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GbmvConfig {
    /// Matrix order (rows of the dense matrix; columns of `ab`).
    pub n: usize,
    /// Sub-diagonals below the main diagonal.
    pub kl: usize,
    /// Super-diagonals above the main diagonal.
    pub ku: usize,
    /// Row-panel height of the blocked variants (elements).
    pub block: usize,
}

impl GbmvConfig {
    /// A configuration with symmetric bandwidth 64 (129 stored
    /// diagonals) and 256-row panels.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_bands(n, 64, 64, 256)
    }

    /// A configuration with explicit band widths and panel height.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `block` is zero, or a band width reaches `n`
    /// (the band layout stores clipped diagonals, so `kl, ku < n`).
    #[must_use]
    pub fn with_bands(n: usize, kl: usize, ku: usize, block: usize) -> Self {
        assert!(n > 0, "matrix order must be nonzero");
        assert!(block > 0, "panel height must be nonzero");
        assert!(kl < n && ku < n, "band widths must be below the order");
        Self { n, kl, ku, block }
    }

    /// Stored diagonals (`ab` rows).
    #[must_use]
    pub fn diagonals(&self) -> usize {
        self.kl + self.ku + 1
    }

    /// Bytes of the band array `ab` alone.
    #[must_use]
    pub fn band_bytes(&self) -> u64 {
        (self.diagonals() * self.n * 8) as u64
    }

    /// Total working-set footprint: `ab` plus the `x` and `y` vectors.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.band_bytes() + 2 * (self.n * 8) as u64
    }

    /// Bytes that must move between CPU and DRAM: `ab` and `x` read
    /// once, `y` read and written once (the §3.3 metric's numerator).
    #[must_use]
    pub fn nominal_bytes(&self) -> u64 {
        self.band_bytes() + 3 * (self.n * 8) as u64
    }

    /// Number of row panels for the blocked variants.
    #[must_use]
    pub fn panels(&self) -> usize {
        self.n.div_ceil(self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_the_ladder() {
        let labels: Vec<&str> = GbmvVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["Naive", "Blocked", "Parallel"]);
    }

    #[test]
    fn only_parallel_is_parallel() {
        assert!(!GbmvVariant::Naive.is_parallel());
        assert!(!GbmvVariant::Blocked.is_parallel());
        assert!(GbmvVariant::Parallel.is_parallel());
    }

    #[test]
    fn schedules_are_static() {
        for v in GbmvVariant::all() {
            assert_eq!(v.schedule(), Schedule::Static);
        }
    }

    #[test]
    fn config_accounting() {
        let cfg = GbmvConfig::with_bands(1024, 16, 32, 128);
        assert_eq!(cfg.diagonals(), 49);
        assert_eq!(cfg.band_bytes(), 49 * 1024 * 8);
        assert_eq!(cfg.footprint_bytes(), (49 + 2) * 1024 * 8);
        assert_eq!(cfg.nominal_bytes(), (49 + 3) * 1024 * 8);
        assert_eq!(cfg.panels(), 8);
        assert_eq!(GbmvConfig::with_bands(100, 4, 4, 32).panels(), 4);
    }

    #[test]
    #[should_panic(expected = "band widths must be below the order")]
    fn oversized_band_rejected() {
        let _ = GbmvConfig::with_bands(8, 8, 0, 4);
    }

    #[test]
    #[should_panic(expected = "panel height must be nonzero")]
    fn zero_block_rejected() {
        let _ = GbmvConfig::with_bands(8, 2, 2, 0);
    }
}
