//! Host-native STREAM.

use super::StreamOp;
use membound_parallel::{Pool, Schedule};
use std::hint::black_box;
use std::time::Instant;

/// Result of a native STREAM measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NativeStreamResult {
    /// The test that was run.
    pub op: StreamOp,
    /// Elements per array.
    pub elements: usize,
    /// Best (minimum) per-pass time in seconds.
    pub best_seconds: f64,
    /// Achieved bandwidth in GB/s using STREAM's nominal byte counting.
    pub gbps: f64,
}

/// Run one STREAM test natively: `reps` timed passes over arrays of
/// `elements` doubles, split across the pool with a static schedule, best
/// pass reported (STREAM's own convention of taking the maximum observed
/// rate).
///
/// # Panics
///
/// Panics if `elements` or `reps` is zero.
///
/// # Example
///
/// ```
/// use membound_core::{run_native_stream, StreamOp};
/// use membound_parallel::Pool;
///
/// let r = run_native_stream(StreamOp::Triad, 1 << 16, 3, &Pool::new(2));
/// assert!(r.gbps > 0.0);
/// ```
pub fn run_native(op: StreamOp, elements: usize, reps: usize, pool: &Pool) -> NativeStreamResult {
    assert!(elements > 0, "need at least one element");
    assert!(reps > 0, "need at least one repetition");
    let d = 3.0f64;
    let mut a = vec![0.0f64; elements];
    let b: Vec<f64> = (0..elements).map(|i| (i % 97) as f64).collect();
    let c: Vec<f64> = (0..elements).map(|i| (i % 89) as f64 * 0.5).collect();

    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        run_pass(op, &mut a, &b, &c, d, pool);
        let dt = start.elapsed().as_secs_f64();
        black_box(&a);
        best = best.min(dt);
    }
    let gbps = op.nominal_bytes(elements as u64) as f64 / best / 1e9;
    NativeStreamResult {
        op,
        elements,
        best_seconds: best,
        gbps,
    }
}

fn run_pass(op: StreamOp, a: &mut [f64], b: &[f64], c: &[f64], d: f64, pool: &Pool) {
    let n = a.len() as u64;
    // Split the output array into disjoint chunks per thread; each chunk
    // borrows its slice region safely via pointer arithmetic on the raw
    // parts… instead we use the scoped split pattern: chunk the index
    // space statically and hand each thread a disjoint &mut view.
    let threads = pool.threads();
    let plan = Schedule::Static.plan(n, threads, |_| 1.0);
    std::thread::scope(|scope| {
        let mut rest = a;
        let mut offset = 0u64;
        for ranges in &plan {
            let Some(range) = ranges.first() else {
                continue;
            };
            debug_assert_eq!(ranges.len(), 1, "static plan: one range per thread");
            let len = (range.end - range.start) as usize;
            debug_assert_eq!(range.start, offset);
            let (mine, tail) = rest.split_at_mut(len);
            rest = tail;
            let lo = range.start as usize;
            offset = range.end;
            scope.spawn(move || kernel(op, mine, &b[lo..lo + len], &c[lo..lo + len], d));
        }
    });
}

#[inline]
fn kernel(op: StreamOp, a: &mut [f64], b: &[f64], c: &[f64], d: f64) {
    match op {
        StreamOp::Copy => {
            for (x, &y) in a.iter_mut().zip(b) {
                *x = y;
            }
        }
        StreamOp::Scale => {
            for (x, &y) in a.iter_mut().zip(b) {
                *x = d * y;
            }
        }
        StreamOp::Add => {
            for ((x, &y), &z) in a.iter_mut().zip(b).zip(c) {
                *x = y + z;
            }
        }
        StreamOp::Triad => {
            for ((x, &y), &z) in a.iter_mut().zip(b).zip(c) {
                *x = y + d * z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_values(op: StreamOp, threads: u32) {
        let n = 1000;
        let mut a = vec![0.0f64; n];
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        run_pass(op, &mut a, &b, &c, 3.0, &Pool::new(threads));
        for i in 0..n {
            let expected = match op {
                StreamOp::Copy => b[i],
                StreamOp::Scale => 3.0 * b[i],
                StreamOp::Add => b[i] + c[i],
                StreamOp::Triad => b[i] + 3.0 * c[i],
            };
            assert_eq!(a[i], expected, "{op} at {i} ({threads} threads)");
        }
    }

    #[test]
    fn all_ops_compute_correct_values_sequential_and_parallel() {
        for op in StreamOp::all() {
            check_values(op, 1);
            check_values(op, 4);
        }
    }

    #[test]
    fn measurement_reports_positive_bandwidth() {
        let r = run_native(StreamOp::Copy, 1 << 14, 2, &Pool::new(1));
        assert!(r.best_seconds > 0.0);
        assert!(r.gbps > 0.0);
        assert_eq!(r.elements, 1 << 14);
    }

    #[test]
    fn uneven_split_covers_whole_array() {
        // 1003 elements over 4 threads exercises the remainder path.
        let n = 1003;
        let mut a = vec![0.0f64; n];
        let b = vec![1.0f64; n];
        let c = vec![1.0f64; n];
        run_pass(StreamOp::Add, &mut a, &b, &c, 0.0, &Pool::new(4));
        assert!(a.iter().all(|&x| x == 2.0));
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elements_rejected() {
        let _ = run_native(StreamOp::Copy, 0, 1, &Pool::new(1));
    }
}
