//! The STREAM benchmark (§4.1 of the paper).
//!
//! Four vector operations with the paper's per-iteration traffic/flop
//! accounting:
//!
//! | Test | Operation | bytes/iter | FLOPs/iter |
//! |---|---|---|---|
//! | COPY  | `a[i] = b[i]`            | 16 | 0 |
//! | SCALE | `a[i] = d * b[i]`        | 16 | 1 |
//! | ADD   | `a[i] = b[i] + c[i]`     | 24 | 1 |
//! | TRIAD | `a[i] = b[i] + d * c[i]` | 24 | 2 |
//!
//! Arrays are sized per memory level exactly as §4.1 prescribes: large
//! enough not to be cached in a faster level, small enough not to be
//! forced out of the level being measured. Multi-threaded runs measure
//! shared levels; sequential runs (scaled by core count) measure private
//! ones.

mod native;
mod traced;

pub use native::{run_native, NativeStreamResult};
pub use traced::StreamTrace;

use serde::{Deserialize, Serialize};

/// The four STREAM tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StreamOp {
    /// `a[i] = b[i]`
    Copy,
    /// `a[i] = d * b[i]`
    Scale,
    /// `a[i] = b[i] + c[i]`
    Add,
    /// `a[i] = b[i] + d * c[i]`
    Triad,
}

impl StreamOp {
    /// All four tests in STREAM's canonical order.
    #[must_use]
    pub fn all() -> [StreamOp; 4] {
        [
            StreamOp::Copy,
            StreamOp::Scale,
            StreamOp::Add,
            StreamOp::Triad,
        ]
    }

    /// STREAM's display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StreamOp::Copy => "Copy",
            StreamOp::Scale => "Scale",
            StreamOp::Add => "Add",
            StreamOp::Triad => "Triad",
        }
    }

    /// Nominal bytes moved per loop iteration (the STREAM convention:
    /// 8 bytes per array touched, write-allocate traffic not counted).
    #[must_use]
    pub fn bytes_per_iter(self) -> u64 {
        match self {
            StreamOp::Copy | StreamOp::Scale => 16,
            StreamOp::Add | StreamOp::Triad => 24,
        }
    }

    /// Floating-point operations per iteration.
    #[must_use]
    pub fn flops_per_iter(self) -> u32 {
        match self {
            StreamOp::Copy => 0,
            StreamOp::Scale | StreamOp::Add => 1,
            StreamOp::Triad => 2,
        }
    }

    /// Number of arrays the test touches (2 or 3).
    #[must_use]
    pub fn arrays_used(self) -> u32 {
        match self {
            StreamOp::Copy | StreamOp::Scale => 2,
            StreamOp::Add | StreamOp::Triad => 3,
        }
    }

    /// Nominal bytes for `n` iterations.
    #[must_use]
    pub fn nominal_bytes(self, n: u64) -> u64 {
        self.bytes_per_iter() * n
    }
}

impl std::fmt::Display for StreamOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_and_flop_accounting_matches_section_4_1() {
        assert_eq!(StreamOp::Copy.bytes_per_iter(), 16);
        assert_eq!(StreamOp::Copy.flops_per_iter(), 0);
        assert_eq!(StreamOp::Scale.bytes_per_iter(), 16);
        assert_eq!(StreamOp::Scale.flops_per_iter(), 1);
        assert_eq!(StreamOp::Add.bytes_per_iter(), 24);
        assert_eq!(StreamOp::Add.flops_per_iter(), 1);
        assert_eq!(StreamOp::Triad.bytes_per_iter(), 24);
        assert_eq!(StreamOp::Triad.flops_per_iter(), 2);
    }

    #[test]
    fn array_counts() {
        assert_eq!(StreamOp::Copy.arrays_used(), 2);
        assert_eq!(StreamOp::Triad.arrays_used(), 3);
    }

    #[test]
    fn nominal_bytes_scales_linearly() {
        assert_eq!(StreamOp::Triad.nominal_bytes(1000), 24_000);
    }

    #[test]
    fn labels() {
        let labels: Vec<&str> = StreamOp::all().iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["Copy", "Scale", "Add", "Triad"]);
    }
}
