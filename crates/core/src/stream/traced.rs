//! Trace generator for the STREAM tests.

use super::StreamOp;
use membound_trace::{IterCost, TraceSink};

/// Line size used for probe interleaving (all modelled devices use 64 B).
const LINE: u64 = 64;
/// Elements of one cache line (f64).
const ELEMS_PER_LINE: u64 = LINE / 8;

/// Trace generator for one STREAM test over arrays of `elements` doubles.
///
/// Emission is line-granular and interleaves the two or three array
/// streams the way the scalar loop touches them (b-line, c-line, a-line
/// per group of eight iterations), so stride prefetchers see the same
/// concurrent streams they would on hardware.
#[derive(Debug, Clone, Copy)]
pub struct StreamTrace {
    op: StreamOp,
    elements: u64,
    base_a: u64,
    base_b: u64,
    base_c: u64,
}

impl StreamTrace {
    /// A generator for `op` over arrays of `elements` doubles, placed in
    /// three well-separated address regions.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is zero.
    #[must_use]
    pub fn new(op: StreamOp, elements: u64) -> Self {
        assert!(elements > 0, "need at least one element");
        // Regions spaced far apart so the streams never alias, with a
        // deliberate 65-line skew between arrays: power-of-two-aligned
        // bases would put a[i], b[i] and c[i] in the same cache set of
        // every modelled cache and thrash low-associativity L1s — real
        // STREAM allocations avoid exactly this via allocator offsets.
        let stride = (elements * 8).next_power_of_two().max(1 << 20) + 65 * 64;
        Self {
            op,
            elements,
            base_a: 0x2000_0000_0000,
            base_b: 0x2000_0000_0000 + stride,
            base_c: 0x2000_0000_0000 + 2 * stride,
        }
    }

    /// The test being traced.
    #[must_use]
    pub fn op(&self) -> StreamOp {
        self.op
    }

    /// Elements per array.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Per-iteration instruction budget of the scalar loop.
    #[must_use]
    pub fn iter_cost(&self) -> IterCost {
        let loads = self.op.arrays_used() - 1;
        IterCost::new(2, self.op.flops_per_iter())
            .mem(loads, 1)
            .elem_bytes(8)
            .vectorizable(true)
    }

    /// Emit one pass over iterations `lo..hi` (element indices).
    pub fn trace_pass<S: TraceSink + ?Sized>(&self, sink: &mut S, lo: u64, hi: u64) {
        let reads_c = self.op.arrays_used() == 3;
        let mut i = lo;
        while i < hi {
            let chunk_end = ((i / ELEMS_PER_LINE + 1) * ELEMS_PER_LINE).min(hi);
            let bytes = (chunk_end - i) * 8;
            sink.load_range(self.base_b + i * 8, bytes);
            if reads_c {
                sink.load_range(self.base_c + i * 8, bytes);
            }
            sink.store_range(self.base_a + i * 8, bytes);
            i = chunk_end;
        }
        sink.compute(self.iter_cost(), hi - lo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_trace::TraceBuffer;

    #[test]
    fn copy_emits_two_streams_triad_three() {
        for (op, expected_arrays) in [(StreamOp::Copy, 2u64), (StreamOp::Triad, 3)] {
            let t = StreamTrace::new(op, 64);
            let mut buf = TraceBuffer::new();
            t.trace_pass(&mut buf, 0, 64);
            // 64 elements = 8 lines per array.
            assert_eq!(buf.len() as u64, 8 * expected_arrays, "{op}");
        }
    }

    #[test]
    fn bytes_match_the_element_count() {
        let t = StreamTrace::new(StreamOp::Add, 100);
        let mut buf = TraceBuffer::new();
        t.trace_pass(&mut buf, 0, 100);
        assert_eq!(buf.stats().bytes_loaded, 2 * 100 * 8);
        assert_eq!(buf.stats().bytes_stored, 100 * 8);
        assert_eq!(buf.stats().compute_iters, 100);
    }

    #[test]
    fn streams_are_interleaved_per_line() {
        let t = StreamTrace::new(StreamOp::Copy, 32);
        let mut buf = TraceBuffer::new();
        t.trace_pass(&mut buf, 0, 32);
        // Pattern: load b, store a, load b, store a, ...
        let kinds: Vec<bool> = buf.iter().map(|a| a.kind.is_write()).collect();
        assert_eq!(
            kinds,
            vec![false, true, false, true, false, true, false, true]
        );
    }

    #[test]
    fn partial_ranges_compose() {
        let t = StreamTrace::new(StreamOp::Triad, 1000);
        let mut whole = TraceBuffer::new();
        t.trace_pass(&mut whole, 0, 1000);
        let mut parts = TraceBuffer::new();
        // Split on a line boundary (multiple of 8 elements): probes are
        // line-granular, so mid-line splits legitimately emit two partial
        // probes where the whole pass emits one.
        t.trace_pass(&mut parts, 0, 504);
        t.trace_pass(&mut parts, 504, 1000);
        assert_eq!(whole.as_slice(), parts.as_slice());
    }

    #[test]
    fn unaligned_range_boundaries_split_probes() {
        let t = StreamTrace::new(StreamOp::Copy, 20);
        let mut buf = TraceBuffer::new();
        t.trace_pass(&mut buf, 3, 11);
        // Elements 3..8 (line 0) then 8..11 (line 1): 2 probes per array.
        assert_eq!(buf.stats().loads, 2);
        assert_eq!(buf.stats().stores, 2);
        assert_eq!(buf.stats().bytes_loaded, 8 * 8);
    }

    #[test]
    fn iter_cost_matches_op() {
        assert_eq!(StreamTrace::new(StreamOp::Copy, 8).iter_cost().loads, 1);
        assert_eq!(StreamTrace::new(StreamOp::Triad, 8).iter_cost().loads, 2);
        assert_eq!(StreamTrace::new(StreamOp::Triad, 8).iter_cost().flops, 2);
        assert!(
            StreamTrace::new(StreamOp::Scale, 8)
                .iter_cost()
                .vectorizable
        );
    }

    #[test]
    fn arrays_do_not_alias() {
        let t = StreamTrace::new(StreamOp::Triad, 1 << 20);
        let mut buf = TraceBuffer::new();
        t.trace_pass(&mut buf, (1 << 20) - 8, 1 << 20);
        let a_probe = buf.iter().find(|a| a.kind.is_write()).unwrap().addr;
        let b_probe = buf.iter().find(|a| !a.kind.is_write()).unwrap().addr;
        assert!(a_probe < b_probe, "a region sits below b region");
        assert!(b_probe - a_probe >= (1 << 20) * 8);
    }
}
