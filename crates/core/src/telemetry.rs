//! Structured run telemetry: the versioned JSONL run-log schema.
//!
//! Every engine run (see [`crate::runner`]) emits one run log under
//! `results/`: a JSON Lines file whose first line is a [`RunHeader`] and
//! whose remaining lines are one [`CellRecord`] per experiment cell, in
//! deterministic cell order. The schema is versioned
//! ([`SCHEMA_VERSION`]); consumers must reject logs whose header carries
//! a different version rather than guess.
//!
//! [`validate_run_log`] is the machine-checkable contract: CI runs a
//! small figure end-to-end and feeds the emitted log through it.
//!
//! Both digests in the schema — each cell's `stats_digest` and the
//! summary's `combined_digest` — are *order-sensitive* FNV-1a hashes
//! (not order-insensitive checksums): reordering the hashed fields or
//! the cell lines changes the value. That is why cell lines must appear
//! in deterministic index order no matter how the engine parallelises
//! execution, and it is what lets a byte-equal `combined_digest` prove
//! two runs simulated identical statistics cell for cell.

use serde::{Deserialize, Serialize};

/// Version of the run-log schema emitted by this crate.
///
/// Bump on any change to the field set or meaning of [`RunHeader`] /
/// [`CellRecord`]; the validator rejects mismatched logs.
///
/// History:
/// * 3 — [`SimRecord`] carries `strided_batches`, the count of bulk
///   strided reference batches ([`membound_trace::TraceSink::access_strided`]
///   and friends) the simulated cores executed. Diagnostic only: like
///   `host_workers` it is excluded from `stats_digest`, so a batched and
///   a per-element replay of the same program still combine to the same
///   digest while the log shows which path ran.
/// * 2 — `hit_rate` of an untouched level is now `1.0` (the
///   `membound_sim::LevelStats::hit_rate` convention; it was `0.0`,
///   silently disagreeing with the simulator's text reports), and
///   [`SimRecord`] carries `host_workers`.
/// * 1 — initial schema.
pub const SCHEMA_VERSION: u32 = 3;

/// First line of a run log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHeader {
    /// Always `"header"`; distinguishes the line kind.
    pub kind: String,
    /// The run-log schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which figure/experiment produced the log (e.g. `"fig2_transpose"`).
    pub figure: String,
    /// Worker threads the engine ran with.
    pub jobs: u32,
    /// Number of cell lines that follow.
    pub cells: u64,
    /// Wall-clock timestamp of the run, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
}

impl RunHeader {
    /// Header for a run of `figure` with `jobs` workers and `cells` cells,
    /// stamped with the current wall clock.
    #[must_use]
    pub fn new(figure: &str, jobs: u32, cells: u64) -> Self {
        let created_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self {
            kind: "header".into(),
            schema_version: SCHEMA_VERSION,
            figure: figure.into(),
            jobs,
            cells,
            created_unix_ms,
        }
    }
}

/// Per-cache-level counters of one cell (summed over simulated cores).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelRecord {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// `hits / (hits + misses)`; `1.0` when the level saw no accesses.
    ///
    /// The untouched-level convention deliberately matches
    /// [`membound_sim::LevelStats::hit_rate`] ("an untouched level never
    /// missed"), so JSONL run logs agree number-for-number with the
    /// simulator's own reports. Schema version 1 wrote `0.0` here, which
    /// made the same untouched level look like a 100% *miss* rate in the
    /// log and a 100% *hit* rate in text reports.
    pub hit_rate: f64,
}

impl CacheLevelRecord {
    /// Build from raw counters; the rate delegates to
    /// [`membound_sim::LevelStats::hit_rate`] so the two layers cannot
    /// drift apart again.
    #[must_use]
    pub fn new(hits: u64, misses: u64) -> Self {
        let stats = membound_sim::LevelStats {
            hits,
            misses,
            ..Default::default()
        };
        Self {
            hits,
            misses,
            hit_rate: stats.hit_rate(),
        }
    }
}

/// The simulated quantities of one successfully executed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRecord {
    /// Simulated threads (= cores used).
    pub threads: u32,
    /// Simulated duration in core cycles.
    pub cycles: f64,
    /// Simulated duration in seconds.
    pub seconds: f64,
    /// Per-level cache counters, L1 first.
    pub cache_levels: Vec<CacheLevelRecord>,
    /// First-level data-TLB counters.
    pub dtlb: CacheLevelRecord,
    /// Bytes read from DRAM.
    pub dram_bytes_read: u64,
    /// Bytes written to DRAM.
    pub dram_bytes_written: u64,
    /// DRAM line-read transactions.
    pub dram_reads: u64,
    /// DRAM line-write transactions.
    pub dram_writes: u64,
    /// [`membound_sim::SimReport::stats_digest`] as 16 hex digits: the
    /// value the serial-vs-parallel equivalence checks compare.
    pub stats_digest: String,
    /// Host worker threads that replayed this cell's simulated cores (1
    /// for serial replay). Host-side diagnostic like `wall_seconds`:
    /// varies with the job budget, never with the simulated results.
    pub host_workers: u32,
    /// Bulk strided batches the simulated cores executed
    /// ([`membound_sim::SimReport::strided_batches`]), summed over cores.
    /// Diagnostic: excluded from `stats_digest`, so it records whether a
    /// run took the batched replay path without perturbing the
    /// digest-equality contract.
    pub strided_batches: u64,
}

impl SimRecord {
    /// Flatten a full simulator report into the telemetry schema.
    #[must_use]
    pub fn from_report(report: &membound_sim::SimReport) -> Self {
        Self {
            threads: report.threads,
            cycles: report.cycles,
            seconds: report.seconds,
            cache_levels: report
                .cache_stats
                .iter()
                .map(|l| CacheLevelRecord::new(l.hits, l.misses))
                .collect(),
            dtlb: CacheLevelRecord::new(report.dtlb_stats.hits, report.dtlb_stats.misses),
            dram_bytes_read: report.dram.bytes_read,
            dram_bytes_written: report.dram.bytes_written,
            dram_reads: report.dram.reads,
            dram_writes: report.dram.writes,
            stats_digest: format!("{:016x}", report.stats_digest()),
            host_workers: report.host_workers,
            strided_batches: report.strided_batches,
        }
    }
}

/// Execution status of one cell.
pub mod status {
    /// The cell ran and produced a result.
    pub const OK: &str = "ok";
    /// The workload exceeds the device's memory; deliberately skipped.
    pub const DOES_NOT_FIT: &str = "does_not_fit";
    /// The cell's closure panicked; `error` carries the message.
    pub const PANICKED: &str = "panicked";
}

/// One experiment cell: a kernel variant on a device at one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Always `"cell"`.
    pub kind: String,
    /// Position in the experiment matrix; cell lines appear in index
    /// order regardless of the parallel execution order.
    pub index: u64,
    /// Workload panel label (e.g. the matrix size `"2048"`).
    pub panel: String,
    /// Device label.
    pub device: String,
    /// Kernel family: `"transpose"`, `"blur"`, `"fused_blur"`, `"stream"`.
    pub kernel: String,
    /// Variant label within the kernel's ladder.
    pub variant: String,
    /// One of the [`status`] constants.
    pub status: String,
    /// Host wall-clock seconds this cell's simulation took to *run*
    /// (engine scheduling overhead excluded; nondeterministic).
    pub wall_seconds: f64,
    /// Simulated quantities; present iff the cell produced a report.
    pub sim: Option<SimRecord>,
    /// Measured bandwidth in GB/s, for STREAM cells.
    pub gbps: Option<f64>,
    /// Speedup over the first cell of the same (panel, device, kernel)
    /// ladder, when the ladder has a baseline.
    pub speedup_vs_naive: Option<f64>,
    /// The §3.3 relative bandwidth-utilization metric, when the matrix
    /// carried a STREAM baseline for the device.
    pub bandwidth_utilization: Option<f64>,
    /// Panic message for `status == "panicked"`.
    pub error: Option<String>,
}

/// Summary returned by a successful [`validate_run_log`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunLogSummary {
    /// Figure named in the header.
    pub figure: String,
    /// Worker threads of the run.
    pub jobs: u32,
    /// Total cells.
    pub cells: u64,
    /// Cells with `status == "ok"`.
    pub ok_cells: u64,
    /// FNV-1a combination of every cell's `stats_digest`, as 16 hex
    /// digits — compare across runs to prove simulated-stat identity.
    pub combined_digest: String,
}

/// Combine per-cell digest strings into one order-sensitive digest.
#[must_use]
pub fn combine_digests<'a>(digests: impl Iterator<Item = &'a str>) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for d in digests {
        for b in d.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Render a header plus cell records as JSONL text.
#[must_use]
pub fn render_run_log(header: &RunHeader, cells: &[CellRecord]) -> String {
    let mut out = String::new();
    out.push_str(&serde_json::to_string(header).expect("header serializes"));
    out.push('\n');
    for cell in cells {
        out.push_str(&serde_json::to_string(cell).expect("cell serializes"));
        out.push('\n');
    }
    out
}

/// Validate a run log against schema version [`SCHEMA_VERSION`].
///
/// Checks: a parseable header line with `kind == "header"` and the
/// current schema version; every following line parses as a cell with
/// `kind == "cell"`, a known status, indices in exact `0..cells` order;
/// `status == "ok"` cells carry a result (`sim` or `gbps`) and panicked
/// cells an error message.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_run_log(text: &str) -> Result<RunLogSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty run log")?;
    let header: RunHeader =
        serde_json::from_str(first).map_err(|e| format!("line 1: bad header: {e:?}"))?;
    if header.kind != "header" {
        return Err(format!(
            "line 1: kind {:?}, expected \"header\"",
            header.kind
        ));
    }
    if header.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema version {} unsupported (validator speaks {SCHEMA_VERSION})",
            header.schema_version
        ));
    }

    let mut ok_cells = 0u64;
    let mut seen = 0u64;
    let mut digests: Vec<String> = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let cell: CellRecord =
            serde_json::from_str(line).map_err(|e| format!("line {n}: bad cell: {e:?}"))?;
        if cell.kind != "cell" {
            return Err(format!("line {n}: kind {:?}, expected \"cell\"", cell.kind));
        }
        if cell.index != seen {
            return Err(format!(
                "line {n}: index {} out of order (expected {seen})",
                cell.index
            ));
        }
        match cell.status.as_str() {
            status::OK => {
                if cell.sim.is_none() && cell.gbps.is_none() {
                    return Err(format!("line {n}: ok cell carries no sim data or gbps"));
                }
                ok_cells += 1;
            }
            status::DOES_NOT_FIT => {}
            status::PANICKED => {
                if cell.error.is_none() {
                    return Err(format!("line {n}: panicked cell has no error message"));
                }
            }
            other => return Err(format!("line {n}: unknown status {other:?}")),
        }
        if let Some(sim) = &cell.sim {
            if sim.stats_digest.len() != 16
                || !sim.stats_digest.bytes().all(|b| b.is_ascii_hexdigit())
            {
                return Err(format!(
                    "line {n}: stats_digest {:?} is not 16 hex digits",
                    sim.stats_digest
                ));
            }
            digests.push(sim.stats_digest.clone());
        }
        seen += 1;
    }
    if seen != header.cells {
        return Err(format!(
            "header promises {} cells but the log has {seen}",
            header.cells
        ));
    }
    Ok(RunLogSummary {
        figure: header.figure,
        jobs: header.jobs,
        cells: seen,
        ok_cells,
        combined_digest: combine_digests(digests.iter().map(String::as_str)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell(index: u64) -> CellRecord {
        CellRecord {
            kind: "cell".into(),
            index,
            panel: "256".into(),
            device: "Test".into(),
            kernel: "transpose".into(),
            variant: "Naive".into(),
            status: status::OK.into(),
            wall_seconds: 0.25,
            sim: Some(SimRecord {
                threads: 1,
                cycles: 1000.0,
                seconds: 1e-6,
                cache_levels: vec![CacheLevelRecord::new(90, 10)],
                dtlb: CacheLevelRecord::new(99, 1),
                dram_bytes_read: 640,
                dram_bytes_written: 320,
                dram_reads: 10,
                dram_writes: 5,
                stats_digest: "00deadbeef001234".into(),
                host_workers: 1,
                strided_batches: 4,
            }),
            gbps: None,
            speedup_vs_naive: Some(1.0),
            bandwidth_utilization: None,
            error: None,
        }
    }

    /// Regression: schema v1 reported an untouched level as `0.0` while
    /// `LevelStats::hit_rate` said `1.0` for the very same counters —
    /// the log and the text reports disagreed. The record now delegates
    /// to the simulator's convention for *every* input.
    #[test]
    fn hit_rate_convention_matches_the_simulator() {
        for (hits, misses) in [(0u64, 0u64), (3, 1), (0, 7), (1, 0), (1000, 24)] {
            let stats = membound_sim::LevelStats {
                hits,
                misses,
                ..Default::default()
            };
            let record = CacheLevelRecord::new(hits, misses);
            assert_eq!(
                record.hit_rate.to_bits(),
                stats.hit_rate().to_bits(),
                "hits={hits} misses={misses}"
            );
        }
        assert_eq!(
            CacheLevelRecord::new(0, 0).hit_rate,
            1.0,
            "an untouched level never missed"
        );
    }

    #[test]
    fn round_trip_and_validate() {
        let header = RunHeader::new("fig_test", 4, 2);
        let cells = vec![sample_cell(0), sample_cell(1)];
        let text = render_run_log(&header, &cells);
        let summary = validate_run_log(&text).expect("valid log");
        assert_eq!(summary.figure, "fig_test");
        assert_eq!(summary.jobs, 4);
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.ok_cells, 2);
    }

    #[test]
    fn wrong_schema_version_rejected() {
        let mut header = RunHeader::new("fig_test", 1, 0);
        header.schema_version = SCHEMA_VERSION + 1;
        let text = render_run_log(&header, &[]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn out_of_order_cells_rejected() {
        let header = RunHeader::new("fig_test", 1, 2);
        let text = render_run_log(&header, &[sample_cell(1), sample_cell(0)]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn cell_count_mismatch_rejected() {
        let header = RunHeader::new("fig_test", 1, 3);
        let text = render_run_log(&header, &[sample_cell(0)]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("promises"), "{err}");
    }

    #[test]
    fn ok_cell_without_result_rejected() {
        let header = RunHeader::new("fig_test", 1, 1);
        let mut cell = sample_cell(0);
        cell.sim = None;
        let text = render_run_log(&header, &[cell]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("no sim data"), "{err}");
    }

    #[test]
    fn panicked_cell_needs_a_message() {
        let header = RunHeader::new("fig_test", 1, 1);
        let mut cell = sample_cell(0);
        cell.status = status::PANICKED.into();
        cell.sim = None;
        let text = render_run_log(&header, &[cell]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("no error message"), "{err}");
    }

    #[test]
    fn combined_digest_is_order_sensitive() {
        let a = combine_digests(["aaaa", "bbbb"].into_iter());
        let b = combine_digests(["bbbb", "aaaa"].into_iter());
        assert_ne!(a, b);
    }
}
