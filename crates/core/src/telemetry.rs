//! Structured run telemetry: the versioned JSONL run-log schema.
//!
//! Every engine run (see [`crate::runner`]) emits one run log under
//! `results/`: a JSON Lines file whose first line is a [`RunHeader`] and
//! whose remaining lines are one [`CellRecord`] per experiment cell, in
//! deterministic cell order. The schema is versioned
//! ([`SCHEMA_VERSION`]); consumers must reject logs whose header carries
//! a different version rather than guess.
//!
//! [`validate_run_log`] is the machine-checkable contract: CI runs a
//! small figure end-to-end and feeds the emitted log through it.
//!
//! Both digests in the schema — each cell's `stats_digest` and the
//! summary's `combined_digest` — are *order-sensitive* FNV-1a hashes
//! (not order-insensitive checksums): reordering the hashed fields or
//! the cell lines changes the value. That is why cell lines must appear
//! in deterministic index order no matter how the engine parallelises
//! execution, and it is what lets a byte-equal `combined_digest` prove
//! two runs simulated identical statistics cell for cell.

use serde::{Deserialize, Serialize};

/// Version of the run-log schema emitted by this crate.
///
/// Bump on any change to the field set or meaning of [`RunHeader`] /
/// [`CellRecord`]. The validator accepts every version from
/// [`MIN_SCHEMA_VERSION`] through this one (older logs read with the
/// migration defaults documented per field below) and rejects *future*
/// versions rather than guess.
///
/// History:
/// * 7 — analytic execution (DESIGN.md §15): [`SimRecord`] carries
///   `analytic_ops` and `replay_fallback_ops`
///   ([`membound_sim::SimReport`]'s fast-forward accounting, summed over
///   cores). Diagnostic like `strided_batches`: excluded from
///   `stats_digest` — the analytic executor is digest-preserving by
///   contract, so the log records *whether* steady states were
///   extrapolated without perturbing digest equality. Absent ⇒ `None`
///   (pre-v7 log).
/// * 6 — fixed-point cycle accounting (DESIGN.md §13): the simulator's
///   per-core cycle counters migrated from f64 to exact u64 subcycle
///   integers, which changes `stats_digest` (and thus every canonical
///   `combined_digest`) once — the one-time controlled migration
///   recorded in `BENCH_sim.json` v4. No record field changed: `cycles`
///   and `seconds` were always derived f64 outputs. The bump marks
///   which model produced a log, so digest mismatches against old logs
///   are attributable to the migration rather than to nondeterminism.
/// * 5 — persistent result cache (DESIGN.md §12): [`CellRecord`] carries
///   `provenance` (digest-excluded; absent ⇒ `None` ⇒ freshly
///   simulated), recording whether a cell's record was restored from a
///   `--resume` log (`"resume"`) or the content-addressed result cache
///   (`"cache"`) instead of simulated in this run.
/// * 4 — crash-safe runs (DESIGN.md §11): [`CellRecord`] carries
///   `attempts` (digest-excluded; absent ⇒ 1) and the [`status`] set
///   gains `"failed"` (panicked on every retry) and `"timed_out"`
///   (exceeded the per-cell deadline). `host_workers` and
///   `strided_batches` became optional on read so v1/v2 logs validate
///   (absent ⇒ `None`); v2+ writers always populate them.
/// * 3 — [`SimRecord`] carries `strided_batches`, the count of bulk
///   strided reference batches ([`membound_trace::TraceSink::access_strided`]
///   and friends) the simulated cores executed. Diagnostic only: like
///   `host_workers` it is excluded from `stats_digest`, so a batched and
///   a per-element replay of the same program still combine to the same
///   digest while the log shows which path ran.
/// * 2 — `hit_rate` of an untouched level is now `1.0` (the
///   `membound_sim::LevelStats::hit_rate` convention; it was `0.0`,
///   silently disagreeing with the simulator's text reports), and
///   [`SimRecord`] carries `host_workers`.
/// * 1 — initial schema.
pub const SCHEMA_VERSION: u32 = 7;

/// Oldest run-log schema version the validator still reads.
///
/// Migration defaults applied to older logs: fields introduced after a
/// log's version deserialize as `None` (`host_workers` and
/// `strided_batches` before v2/v3, `attempts` before v4, `provenance`
/// before v5, `analytic_ops`/`replay_fallback_ops` before v7) — absent
/// means "this release did not record it", never a guessed value.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// First line of a run log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHeader {
    /// Always `"header"`; distinguishes the line kind.
    pub kind: String,
    /// The run-log schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Which figure/experiment produced the log (e.g. `"fig2_transpose"`).
    pub figure: String,
    /// Worker threads the engine ran with.
    pub jobs: u32,
    /// Number of cell lines that follow.
    pub cells: u64,
    /// Wall-clock timestamp of the run, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
}

impl RunHeader {
    /// Header for a run of `figure` with `jobs` workers and `cells` cells,
    /// stamped with the current wall clock.
    #[must_use]
    pub fn new(figure: &str, jobs: u32, cells: u64) -> Self {
        let created_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self {
            kind: "header".into(),
            schema_version: SCHEMA_VERSION,
            figure: figure.into(),
            jobs,
            cells,
            created_unix_ms,
        }
    }
}

/// Per-cache-level counters of one cell (summed over simulated cores).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelRecord {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// `hits / (hits + misses)`; `1.0` when the level saw no accesses.
    ///
    /// The untouched-level convention deliberately matches
    /// [`membound_sim::LevelStats::hit_rate`] ("an untouched level never
    /// missed"), so JSONL run logs agree number-for-number with the
    /// simulator's own reports. Schema version 1 wrote `0.0` here, which
    /// made the same untouched level look like a 100% *miss* rate in the
    /// log and a 100% *hit* rate in text reports.
    pub hit_rate: f64,
}

impl CacheLevelRecord {
    /// Build from raw counters; the rate delegates to
    /// [`membound_sim::LevelStats::hit_rate`] so the two layers cannot
    /// drift apart again.
    #[must_use]
    pub fn new(hits: u64, misses: u64) -> Self {
        let stats = membound_sim::LevelStats {
            hits,
            misses,
            ..Default::default()
        };
        Self {
            hits,
            misses,
            hit_rate: stats.hit_rate(),
        }
    }
}

/// The simulated quantities of one successfully executed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRecord {
    /// Simulated threads (= cores used).
    pub threads: u32,
    /// Simulated duration in core cycles.
    pub cycles: f64,
    /// Simulated duration in seconds.
    pub seconds: f64,
    /// Per-level cache counters, L1 first.
    pub cache_levels: Vec<CacheLevelRecord>,
    /// First-level data-TLB counters.
    pub dtlb: CacheLevelRecord,
    /// Bytes read from DRAM.
    pub dram_bytes_read: u64,
    /// Bytes written to DRAM.
    pub dram_bytes_written: u64,
    /// DRAM line-read transactions.
    pub dram_reads: u64,
    /// DRAM line-write transactions.
    pub dram_writes: u64,
    /// [`membound_sim::SimReport::stats_digest`] as 16 hex digits: the
    /// value the serial-vs-parallel equivalence checks compare.
    pub stats_digest: String,
    /// Host worker threads that replayed this cell's simulated cores (1
    /// for serial replay). Host-side diagnostic like `wall_seconds`:
    /// varies with the job budget, never with the simulated results.
    /// `None` only when read from a schema-v1 log, which predates the
    /// field (v2+ writers always record it).
    pub host_workers: Option<u32>,
    /// Bulk strided batches the simulated cores executed
    /// ([`membound_sim::SimReport::strided_batches`]), summed over cores.
    /// Diagnostic: excluded from `stats_digest`, so it records whether a
    /// run took the batched replay path without perturbing the
    /// digest-equality contract. `None` only when read from a pre-v3
    /// log, which predates the field.
    pub strided_batches: Option<u64>,
    /// Expanded elements the analytic executor fast-forwarded instead of
    /// replaying ([`membound_sim::SimReport::analytic_ops`], summed over
    /// cores). Diagnostic, digest-excluded: analytic execution is
    /// digest-preserving by contract (DESIGN.md §15), so this records
    /// *whether* steady states were extrapolated without perturbing the
    /// digest-equality checks. `None` only when read from a pre-v7 log.
    pub analytic_ops: Option<u64>,
    /// Expanded elements that fell back to concrete replay after the
    /// analytic planner considered and refused them
    /// ([`membound_sim::SimReport::replay_fallback_ops`], summed over
    /// cores). `None` only when read from a pre-v7 log.
    pub replay_fallback_ops: Option<u64>,
}

impl SimRecord {
    /// Flatten a full simulator report into the telemetry schema.
    #[must_use]
    pub fn from_report(report: &membound_sim::SimReport) -> Self {
        Self {
            threads: report.threads,
            cycles: report.cycles,
            seconds: report.seconds,
            cache_levels: report
                .cache_stats
                .iter()
                .map(|l| CacheLevelRecord::new(l.hits, l.misses))
                .collect(),
            dtlb: CacheLevelRecord::new(report.dtlb_stats.hits, report.dtlb_stats.misses),
            dram_bytes_read: report.dram.bytes_read,
            dram_bytes_written: report.dram.bytes_written,
            dram_reads: report.dram.reads,
            dram_writes: report.dram.writes,
            stats_digest: format!("{:016x}", report.stats_digest()),
            host_workers: Some(report.host_workers),
            strided_batches: Some(report.strided_batches),
            analytic_ops: Some(report.analytic_ops),
            replay_fallback_ops: Some(report.replay_fallback_ops),
        }
    }
}

/// Execution status of one cell.
pub mod status {
    /// The cell ran and produced a result.
    pub const OK: &str = "ok";
    /// The workload exceeds the device's memory; deliberately skipped.
    pub const DOES_NOT_FIT: &str = "does_not_fit";
    /// The cell's closure panicked; `error` carries the message.
    pub const PANICKED: &str = "panicked";
    /// Every attempt panicked under a retry policy (`--retries` > 0);
    /// `error` carries the last panic message and `attempts` the count.
    /// Schema v4+.
    pub const FAILED: &str = "failed";
    /// An attempt overran the per-cell wall-clock deadline
    /// (`--cell-deadline`); its result was discarded. Schema v4+.
    pub const TIMED_OUT: &str = "timed_out";
}

/// One experiment cell: a kernel variant on a device at one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Always `"cell"`.
    pub kind: String,
    /// Position in the experiment matrix; cell lines appear in index
    /// order regardless of the parallel execution order.
    pub index: u64,
    /// Workload panel label (e.g. the matrix size `"2048"`).
    pub panel: String,
    /// Device label.
    pub device: String,
    /// Kernel family: `"transpose"`, `"blur"`, `"fused_blur"`, `"stream"`.
    pub kernel: String,
    /// Variant label within the kernel's ladder.
    pub variant: String,
    /// One of the [`status`] constants.
    pub status: String,
    /// Execution attempts this record reflects (1 = first try
    /// succeeded; >1 = retried after panics). Digest-excluded host-side
    /// diagnostic like `wall_seconds`. `None` only when read from a
    /// pre-v4 log, which predates the retry policy; absent ⇒ one
    /// attempt.
    pub attempts: Option<u32>,
    /// Host wall-clock seconds this cell's simulation took to *run*
    /// (engine scheduling overhead excluded; nondeterministic).
    pub wall_seconds: f64,
    /// Simulated quantities; present iff the cell produced a report.
    pub sim: Option<SimRecord>,
    /// Measured bandwidth in GB/s, for STREAM cells.
    pub gbps: Option<f64>,
    /// Speedup over the first cell of the same (panel, device, kernel)
    /// ladder, when the ladder has a baseline.
    pub speedup_vs_naive: Option<f64>,
    /// The §3.3 relative bandwidth-utilization metric, when the matrix
    /// carried a STREAM baseline for the device.
    pub bandwidth_utilization: Option<f64>,
    /// Panic message for `status == "panicked"`.
    pub error: Option<String>,
    /// Where the record's result came from when it was *not* simulated
    /// in this run: [`provenance::RESUME`] (restored from a `--resume`
    /// log) or [`provenance::CACHE`] (restored from the persistent
    /// result cache, DESIGN.md §12). Digest-excluded host-side
    /// diagnostic like `attempts`: a cached run's digest-bearing fields
    /// stay byte-identical to an uncached run's. `None` ⇒ freshly
    /// simulated (and on every pre-v5 log, which predates the field).
    pub provenance: Option<String>,
}

/// Known [`CellRecord::provenance`] values. Schema v5+.
pub mod provenance {
    /// The record was restored from a `--resume` run log.
    pub const RESUME: &str = "resume";
    /// The record was restored from the persistent result cache.
    pub const CACHE: &str = "cache";
}

/// Summary returned by a successful [`validate_run_log`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunLogSummary {
    /// Schema version the log was written with (within
    /// [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Figure named in the header.
    pub figure: String,
    /// Worker threads of the run.
    pub jobs: u32,
    /// Total cells.
    pub cells: u64,
    /// Cells with `status == "ok"`.
    pub ok_cells: u64,
    /// Cells whose record was restored from the persistent result cache
    /// (`provenance == "cache"`, schema v5+) rather than simulated.
    pub cached_cells: u64,
    /// Cells whose record was restored from a `--resume` log
    /// (`provenance == "resume"`, schema v5+) rather than simulated.
    pub resumed_cells: u64,
    /// FNV-1a combination of every cell's `stats_digest`, as 16 hex
    /// digits — compare across runs to prove simulated-stat identity.
    pub combined_digest: String,
}

/// Combine per-cell digest strings into one order-sensitive digest.
#[must_use]
pub fn combine_digests<'a>(digests: impl Iterator<Item = &'a str>) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for d in digests {
        for b in d.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Render a header plus cell records as JSONL text.
#[must_use]
pub fn render_run_log(header: &RunHeader, cells: &[CellRecord]) -> String {
    let mut out = String::new();
    out.push_str(&serde_json::to_string(header).expect("header serializes"));
    out.push('\n');
    for cell in cells {
        out.push_str(&serde_json::to_string(cell).expect("cell serializes"));
        out.push('\n');
    }
    out
}

/// Validate a run log written with any supported schema version
/// ([`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`]).
///
/// Checks: a parseable header line with `kind == "header"` and a
/// supported schema version (future versions are rejected — this
/// validator cannot vouch for fields it does not know); every following
/// line parses as a cell with `kind == "cell"`, a known status, indices
/// in exact `0..cells` order; `status == "ok"` cells carry a result
/// (`sim` or `gbps`) and panicked/failed cells an error message. Fields
/// a log's version predates read as `None` (see [`MIN_SCHEMA_VERSION`]).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_run_log(text: &str) -> Result<RunLogSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty run log")?;
    let header: RunHeader =
        serde_json::from_str(first).map_err(|e| format!("line 1: bad header: {e:?}"))?;
    if header.kind != "header" {
        return Err(format!(
            "line 1: kind {:?}, expected \"header\"",
            header.kind
        ));
    }
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&header.schema_version) {
        return Err(format!(
            "schema version {} unsupported (validator speaks {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})",
            header.schema_version
        ));
    }

    let mut ok_cells = 0u64;
    let mut cached_cells = 0u64;
    let mut resumed_cells = 0u64;
    let mut seen = 0u64;
    let mut digests: Vec<String> = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let cell: CellRecord =
            serde_json::from_str(line).map_err(|e| format!("line {n}: bad cell: {e:?}"))?;
        if cell.kind != "cell" {
            return Err(format!("line {n}: kind {:?}, expected \"cell\"", cell.kind));
        }
        if cell.index != seen {
            return Err(format!(
                "line {n}: index {} out of order (expected {seen})",
                cell.index
            ));
        }
        match cell.status.as_str() {
            status::OK => {
                if cell.sim.is_none() && cell.gbps.is_none() {
                    return Err(format!("line {n}: ok cell carries no sim data or gbps"));
                }
                ok_cells += 1;
            }
            status::DOES_NOT_FIT | status::TIMED_OUT => {}
            status::PANICKED | status::FAILED => {
                if cell.error.is_none() {
                    return Err(format!(
                        "line {n}: {} cell has no error message",
                        cell.status
                    ));
                }
            }
            other => return Err(format!("line {n}: unknown status {other:?}")),
        }
        match cell.provenance.as_deref() {
            None => {}
            Some(provenance::CACHE) => cached_cells += 1,
            Some(provenance::RESUME) => resumed_cells += 1,
            Some(other) => return Err(format!("line {n}: unknown provenance {other:?}")),
        }
        if let Some(sim) = &cell.sim {
            if sim.stats_digest.len() != 16
                || !sim.stats_digest.bytes().all(|b| b.is_ascii_hexdigit())
            {
                return Err(format!(
                    "line {n}: stats_digest {:?} is not 16 hex digits",
                    sim.stats_digest
                ));
            }
            digests.push(sim.stats_digest.clone());
        }
        seen += 1;
    }
    if seen != header.cells {
        return Err(format!(
            "header promises {} cells but the log has {seen}",
            header.cells
        ));
    }
    Ok(RunLogSummary {
        schema_version: header.schema_version,
        figure: header.figure,
        jobs: header.jobs,
        cells: seen,
        ok_cells,
        cached_cells,
        resumed_cells,
        combined_digest: combine_digests(digests.iter().map(String::as_str)),
    })
}

/// A partially written run log recovered from disk: the header plus the
/// strict index-ordered prefix of cell records that made it out before
/// the run stopped.
///
/// This is the input to `--resume`: the engine skips every cell whose
/// record is present (and resumable) and re-simulates only the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRunLog {
    /// The run's header line.
    pub header: RunHeader,
    /// Cell records in exact `0..records.len()` index order.
    pub records: Vec<CellRecord>,
    /// `true` when the last line of the file was unparseable and
    /// dropped — the signature of a process killed mid-`write`.
    pub truncated_tail: bool,
}

/// Parse a possibly truncated run log for resumption.
///
/// Tolerates exactly the damage a crash can cause: a log that simply
/// *ends early* (fewer cell lines than the header promises) and a final
/// line cut off mid-write (dropped; reported via
/// [`PartialRunLog::truncated_tail`]). Anything else — an unparseable
/// header, garbage on an interior line, out-of-order indices, an
/// unsupported schema version — is corruption, not truncation, and is an
/// error: resuming over it would silently misattribute results.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn parse_partial_run_log(text: &str) -> Result<PartialRunLog, String> {
    let lines: Vec<&str> = text.lines().collect();
    let first = *lines.first().ok_or("empty run log")?;
    let header: RunHeader =
        serde_json::from_str(first).map_err(|e| format!("line 1: bad header: {e:?}"))?;
    if header.kind != "header" {
        return Err(format!(
            "line 1: kind {:?}, expected \"header\"",
            header.kind
        ));
    }
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&header.schema_version) {
        return Err(format!(
            "schema version {} unsupported (this release speaks {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})",
            header.schema_version
        ));
    }

    let mut records = Vec::new();
    let mut truncated_tail = false;
    let last = lines.len() - 1;
    for (i, line) in lines.iter().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let cell: CellRecord = match serde_json::from_str(line) {
            Ok(cell) => cell,
            // A torn final line is exactly what a crash mid-append
            // leaves behind; everything before it is still good.
            Err(_) if i == last => {
                truncated_tail = true;
                break;
            }
            Err(e) => return Err(format!("line {n}: bad cell: {e:?}")),
        };
        if cell.kind != "cell" {
            return Err(format!("line {n}: kind {:?}, expected \"cell\"", cell.kind));
        }
        if cell.index != records.len() as u64 {
            return Err(format!(
                "line {n}: index {} out of order (expected {})",
                cell.index,
                records.len()
            ));
        }
        records.push(cell);
    }
    if records.len() as u64 > header.cells {
        return Err(format!(
            "header promises {} cells but the log has {}",
            header.cells,
            records.len()
        ));
    }
    Ok(PartialRunLog {
        header,
        records,
        truncated_tail,
    })
}

/// Write `text` to `path` atomically: write a temporary file in the
/// *same directory* (same filesystem, so the rename cannot degrade to a
/// copy), rename it over the destination, and fsync the parent
/// directory. A crash or full disk mid-write leaves either the old
/// file or the temporary — never a half-written destination.
///
/// The directory fsync is what makes the *rename itself* durable: data
/// sync on the temporary only persists the file's bytes, while the
/// directory entry created by the rename lives in the directory's own
/// metadata. Without syncing that, a power cut right after the rename
/// can roll the directory back and lose the file entirely — weaker
/// than the crash-safety contract of DESIGN.md §11–§12. Filesystems
/// where a directory cannot be opened or synced (the error is ignored)
/// keep the old, rename-only behaviour.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming the
/// temporary file. The temporary is removed on a failed write.
pub fn write_text_atomic(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("{} has no file name", path.display())))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
        Ok(())
    })();
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// Best-effort fsync of `path`'s parent directory, making a just-
/// completed rename durable across power failure. Errors are ignored:
/// some filesystems refuse to open or sync directories, and on those
/// the caller keeps rename-only atomicity (the pre-fix behaviour)
/// rather than failing a write that already succeeded.
fn sync_parent_dir(path: &std::path::Path) {
    let parent = match path.parent() {
        // An empty parent means the path is a bare file name; the
        // directory is the process CWD.
        Some(p) if p.as_os_str().is_empty() => std::path::Path::new("."),
        Some(p) => p,
        None => return,
    };
    if let Ok(dir) = std::fs::File::open(parent) {
        let _ = dir.sync_all();
    }
}

/// An append-mode run-log writer that makes a run crash-safe: the
/// header is written (and synced) at creation, then each cell line is
/// appended and synced as it is handed over, so a killed process leaves
/// a valid truncated log that [`parse_partial_run_log`] can resume from.
///
/// The caller is responsible for feeding records in index order (the
/// engine buffers out-of-order completions and flushes the contiguous
/// prefix); lines are written exactly as [`render_run_log`] would
/// render them, so a streamed log and a one-shot log of the same run
/// are byte-identical apart from the header timestamp.
#[derive(Debug)]
pub struct StreamingRunLog {
    file: std::fs::File,
}

impl StreamingRunLog {
    /// Create (truncate) the log at `path` and write the header line.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn create(path: &std::path::Path, header: &RunHeader) -> std::io::Result<Self> {
        use std::io::Write as _;
        let mut file = std::fs::File::create(path)?;
        let mut line = serde_json::to_string(header).expect("header serializes");
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        Ok(Self { file })
    }

    /// Append one cell line and sync it to disk.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing or syncing. After an error the log
    /// may end in a torn line; that is exactly the damage
    /// [`parse_partial_run_log`] tolerates.
    pub fn append_record(&mut self, record: &CellRecord) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut line = serde_json::to_string(record).expect("cell serializes");
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell(index: u64) -> CellRecord {
        CellRecord {
            kind: "cell".into(),
            index,
            panel: "256".into(),
            device: "Test".into(),
            kernel: "transpose".into(),
            variant: "Naive".into(),
            status: status::OK.into(),
            attempts: Some(1),
            wall_seconds: 0.25,
            sim: Some(SimRecord {
                threads: 1,
                cycles: 1000.0,
                seconds: 1e-6,
                cache_levels: vec![CacheLevelRecord::new(90, 10)],
                dtlb: CacheLevelRecord::new(99, 1),
                dram_bytes_read: 640,
                dram_bytes_written: 320,
                dram_reads: 10,
                dram_writes: 5,
                stats_digest: "00deadbeef001234".into(),
                host_workers: Some(1),
                strided_batches: Some(4),
                analytic_ops: Some(0),
                replay_fallback_ops: Some(128),
            }),
            gbps: None,
            speedup_vs_naive: Some(1.0),
            bandwidth_utilization: None,
            error: None,
            provenance: None,
        }
    }

    /// Regression: schema v1 reported an untouched level as `0.0` while
    /// `LevelStats::hit_rate` said `1.0` for the very same counters —
    /// the log and the text reports disagreed. The record now delegates
    /// to the simulator's convention for *every* input.
    #[test]
    fn hit_rate_convention_matches_the_simulator() {
        for (hits, misses) in [(0u64, 0u64), (3, 1), (0, 7), (1, 0), (1000, 24)] {
            let stats = membound_sim::LevelStats {
                hits,
                misses,
                ..Default::default()
            };
            let record = CacheLevelRecord::new(hits, misses);
            assert_eq!(
                record.hit_rate.to_bits(),
                stats.hit_rate().to_bits(),
                "hits={hits} misses={misses}"
            );
        }
        assert_eq!(
            CacheLevelRecord::new(0, 0).hit_rate,
            1.0,
            "an untouched level never missed"
        );
    }

    #[test]
    fn round_trip_and_validate() {
        let header = RunHeader::new("fig_test", 4, 2);
        let cells = vec![sample_cell(0), sample_cell(1)];
        let text = render_run_log(&header, &cells);
        let summary = validate_run_log(&text).expect("valid log");
        assert_eq!(summary.figure, "fig_test");
        assert_eq!(summary.jobs, 4);
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.ok_cells, 2);
    }

    #[test]
    fn wrong_schema_version_rejected() {
        let mut header = RunHeader::new("fig_test", 1, 0);
        header.schema_version = SCHEMA_VERSION + 1;
        let text = render_run_log(&header, &[]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn out_of_order_cells_rejected() {
        let header = RunHeader::new("fig_test", 1, 2);
        let text = render_run_log(&header, &[sample_cell(1), sample_cell(0)]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn cell_count_mismatch_rejected() {
        let header = RunHeader::new("fig_test", 1, 3);
        let text = render_run_log(&header, &[sample_cell(0)]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("promises"), "{err}");
    }

    #[test]
    fn ok_cell_without_result_rejected() {
        let header = RunHeader::new("fig_test", 1, 1);
        let mut cell = sample_cell(0);
        cell.sim = None;
        let text = render_run_log(&header, &[cell]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("no sim data"), "{err}");
    }

    #[test]
    fn panicked_cell_needs_a_message() {
        let header = RunHeader::new("fig_test", 1, 1);
        let mut cell = sample_cell(0);
        cell.status = status::PANICKED.into();
        cell.sim = None;
        let text = render_run_log(&header, &[cell]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("no error message"), "{err}");
    }

    #[test]
    fn combined_digest_is_order_sensitive() {
        let a = combine_digests(["aaaa", "bbbb"].into_iter());
        let b = combine_digests(["bbbb", "aaaa"].into_iter());
        assert_ne!(a, b);
    }

    /// A hand-written schema-v1 cell line: no `host_workers`, no
    /// `strided_batches`, no `attempts` — the migration defaults must
    /// read all three as `None`.
    fn v1_log() -> String {
        concat!(
            r#"{"kind":"header","schema_version":1,"figure":"fig_old","jobs":2,"cells":1,"created_unix_ms":0}"#,
            "\n",
            r#"{"kind":"cell","index":0,"panel":"256","device":"Test","kernel":"transpose","variant":"Naive","status":"ok","wall_seconds":0.5,"sim":{"threads":1,"cycles":1000.0,"seconds":1e-6,"cache_levels":[{"hits":90,"misses":10,"hit_rate":0.9}],"dtlb":{"hits":99,"misses":1,"hit_rate":0.99},"dram_bytes_read":640,"dram_bytes_written":320,"dram_reads":10,"dram_writes":5,"stats_digest":"00deadbeef001234"},"gbps":null,"speedup_vs_naive":1.0,"bandwidth_utilization":null,"error":null}"#,
            "\n",
        )
        .to_string()
    }

    #[test]
    fn old_schema_versions_validate_with_migration_defaults() {
        let summary = validate_run_log(&v1_log()).expect("v1 log validates");
        assert_eq!(summary.schema_version, 1);
        assert_eq!(summary.ok_cells, 1);

        let partial = parse_partial_run_log(&v1_log()).expect("v1 log parses");
        let sim = partial.records[0].sim.as_ref().unwrap();
        assert_eq!(sim.host_workers, None, "v1 predates host_workers");
        assert_eq!(sim.strided_batches, None, "v1 predates strided_batches");
        assert_eq!(partial.records[0].attempts, None, "v1 predates attempts");
        assert_eq!(
            partial.records[0].provenance, None,
            "v1 predates provenance"
        );

        for version in MIN_SCHEMA_VERSION..=SCHEMA_VERSION {
            let text = v1_log().replace(
                "\"schema_version\":1",
                &format!("\"schema_version\":{version}"),
            );
            validate_run_log(&text).unwrap_or_else(|e| panic!("v{version} rejected: {e}"));
        }
    }

    #[test]
    fn future_schema_version_still_rejected() {
        let text = v1_log().replace(
            "\"schema_version\":1",
            &format!("\"schema_version\":{}", SCHEMA_VERSION + 1),
        );
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        let err = parse_partial_run_log(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn failed_and_timed_out_statuses_validate() {
        let header = RunHeader::new("fig_test", 1, 2);
        let mut failed = sample_cell(0);
        failed.status = status::FAILED.into();
        failed.sim = None;
        failed.attempts = Some(3);
        failed.error = Some("boom".into());
        let mut timed_out = sample_cell(1);
        timed_out.status = status::TIMED_OUT.into();
        timed_out.sim = None;
        let text = render_run_log(&header, &[failed.clone(), timed_out]);
        let summary = validate_run_log(&text).expect("valid log");
        assert_eq!(summary.ok_cells, 0);

        failed.error = None;
        let text = render_run_log(&RunHeader::new("fig_test", 1, 1), &[failed]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("no error message"), "{err}");
    }

    #[test]
    fn provenance_values_are_validated() {
        let header = RunHeader::new("fig_test", 1, 2);
        let mut cached = sample_cell(0);
        cached.provenance = Some(provenance::CACHE.into());
        let mut resumed = sample_cell(1);
        resumed.provenance = Some(provenance::RESUME.into());
        let text = render_run_log(&header, &[cached.clone(), resumed]);
        let summary = validate_run_log(&text).expect("valid log");
        assert_eq!(summary.cached_cells, 1);
        assert_eq!(summary.resumed_cells, 1);

        cached.provenance = Some("teleported".into());
        let text = render_run_log(&RunHeader::new("fig_test", 1, 1), &[cached]);
        let err = validate_run_log(&text).unwrap_err();
        assert!(err.contains("unknown provenance"), "{err}");
    }

    #[test]
    fn partial_log_accepts_a_truncated_tail() {
        let header = RunHeader::new("fig_test", 4, 5);
        let full = render_run_log(&header, &[sample_cell(0), sample_cell(1), sample_cell(2)]);
        // Chop the file mid-way through the final line, like a crash
        // mid-append.
        let cut = full.len() - 37;
        let torn = &full[..cut];
        let partial = parse_partial_run_log(torn).expect("torn log parses");
        assert_eq!(partial.records.len(), 2);
        assert!(partial.truncated_tail);

        // An intact early-ended log is not a torn one.
        let short = render_run_log(&header, &[sample_cell(0)]);
        let partial = parse_partial_run_log(&short).expect("short log parses");
        assert_eq!(partial.records.len(), 1);
        assert!(!partial.truncated_tail);
    }

    #[test]
    fn partial_log_rejects_interior_garbage_and_disorder() {
        let header = RunHeader::new("fig_test", 1, 3);
        let mut lines: Vec<String> = render_run_log(&header, &[sample_cell(0), sample_cell(1)])
            .lines()
            .map(String::from)
            .collect();
        lines[1] = "{torn".into();
        let err = parse_partial_run_log(&lines.join("\n")).unwrap_err();
        assert!(err.contains("bad cell"), "{err}");

        let text = render_run_log(&header, &[sample_cell(1)]);
        let err = parse_partial_run_log(&text).unwrap_err();
        assert!(err.contains("out of order"), "{err}");

        // More cells than the header promises is corruption, not
        // truncation.
        let over = render_run_log(
            &RunHeader::new("fig_test", 1, 1),
            &[sample_cell(0), sample_cell(1)],
        );
        let err = parse_partial_run_log(&over).unwrap_err();
        assert!(err.contains("promises"), "{err}");
    }

    #[test]
    fn streaming_log_matches_one_shot_render() {
        let dir = std::env::temp_dir().join("membound_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let header = RunHeader::new("fig_test", 2, 2);
        let cells = [sample_cell(0), sample_cell(1)];
        let mut log = StreamingRunLog::create(&path, &header).unwrap();
        for cell in &cells {
            log.append_record(cell).unwrap();
        }
        drop(log);
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed, render_run_log(&header, &cells));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("membound_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        std::fs::write(&path, "old contents").unwrap();
        write_text_atomic(&path, "new contents\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new contents\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temporary left behind");
        std::fs::remove_file(&path).unwrap();
    }

    /// The directory fsync after rename must be a silent no-op where it
    /// cannot work: a bare file name (empty parent → CWD), a rootless
    /// path, and a parent that does not exist must all return without
    /// panicking or erroring — durability degrades, writes never fail.
    #[test]
    fn parent_dir_sync_is_best_effort() {
        sync_parent_dir(std::path::Path::new("bare_file.txt"));
        sync_parent_dir(std::path::Path::new("/"));
        sync_parent_dir(std::path::Path::new("/definitely/not/a/real/dir/x.txt"));
    }
}
