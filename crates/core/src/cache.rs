//! Persistent, content-addressed result cache for experiment cells.
//!
//! Every cell of the reproduction is a *pure function* of its
//! configuration: the simulator is deterministic, so (device config,
//! kernel, variant, workload) fully determines the telemetry record the
//! cell produces. This module memoizes that function on disk (DESIGN.md
//! §12): before simulating a cell, [`crate::runner::Engine::run_with`]
//! looks its [`CacheKey`] up in a [`ResultCache`] and restores a hit as
//! [`crate::runner::CellOutcome::Cached`] — byte-identical, in every
//! digest-bearing field, to a fresh simulation — and inserts each miss
//! once it completes.
//!
//! # Key derivation
//!
//! A key is a 128-bit FNV-1a digest of a canonical JSON rendering of
//! everything the simulated result depends on:
//!
//! * [`CACHE_FORMAT_VERSION`] and [`crate::telemetry::SCHEMA_VERSION`]
//!   — an entry written under an older on-disk layout or telemetry
//!   schema can never satisfy a newer lookup;
//! * the sim-code fingerprint ([`membound_sim::SIM_FINGERPRINT`] unless
//!   overridden) — bumped whenever simulator semantics migrate the
//!   canonical figure digests;
//! * the kernel family and variant label (the variant encodes the
//!   schedule: e.g. `Dynamic` vs the static transpose blockings);
//! * the workload (matrix `n` and block size, blur image geometry and
//!   σ, fused-blur thread count, STREAM op and cache level);
//! * the full serialized [`membound_sim::DeviceSpec`].
//!
//! The *panel label* is deliberately excluded: it is presentation-only
//! (two figures rendering the same cell under different panel titles
//! share one entry). Host-side diagnostics (`wall_seconds`,
//! `host_workers`, job counts) are neither in the key nor compared —
//! they never affect simulated results.
//!
//! # On-disk layout and crash safety
//!
//! ```text
//! <cache-dir>/
//!   index.jsonl          append-only journal, one fsynced line per insert
//!   objects/<key>.json   one entry: payload line + its own digest line
//! ```
//!
//! Writes follow the failure-safe persistent-object discipline of the
//! run-log layer (detectable recovery, idempotent replay): an object is
//! written with [`crate::telemetry::write_text_atomic`] (temp file in
//! the same directory + rename), then one line is appended to the
//! fsynced index. A crash between the two leaves a valid object that is
//! merely unindexed — still a hit on lookup (objects are
//! content-addressed; the index is an advisory journal for `stats`/`gc`,
//! never a source of truth) and re-indexed by the next [`gc`]. A crash
//! *during* either write leaves a `.tmp` file or a torn index line,
//! both of which are detected and discarded, never trusted. Lookups
//! re-verify every object end to end (self-digest, kind, versions,
//! fingerprint, key); a corrupt object is deleted and the cell simply
//! re-simulated.
//!
//! # Multi-process coordination
//!
//! One cache directory is shared by *processes*, not just threads: a
//! `membound-serve` daemon inserts while `membound-cli cache gc`
//! rebuilds, and several one-shot runs may share a warm store. Every
//! *mutating* path — [`ResultCache::insert`]'s object-write + index
//! append, [`gc`]'s walk + rebuild, and the open-time header check —
//! holds an advisory [`membound_parallel::FsLock`] on `<dir>/.lock`
//! (`flock(2)`: released by the kernel on crash, so a dead process can
//! never wedge the store). Two single-process assumptions died with
//! the daemon:
//!
//! * an insert's index line could land *between* `gc`'s object walk
//!   and its index rewrite and be silently dropped — the object
//!   survived but its journal line vanished;
//! * a long-lived append descriptor kept writing to the *orphaned*
//!   inode after `gc` renamed a fresh index into place, so every
//!   subsequent insert's line went to a file nothing would ever read.
//!
//! Both are fixed the same way: each index append opens the index
//! fresh *under the lock* (observing any rebuild that won the race)
//! and `gc` holds the lock across walk + rewrite. Read-only paths
//! ([`ResultCache::lookup`], [`survey`]) stay lock-free by design —
//! they already tolerate concurrent mutation.

use crate::runner::{Cell, CellOutcome};
use crate::telemetry::{self, SimRecord};
use membound_parallel::FsLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version of the cache's on-disk layout. Part of every [`CacheKey`]
/// and every entry payload: bump it on any change to the object or
/// index format, and old entries become unreachable (and reclaimable by
/// [`gc`]) instead of misread.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The sim-code fingerprint baked into keys when none is supplied:
/// [`membound_sim::SIM_FINGERPRINT`].
#[must_use]
pub fn default_fingerprint() -> &'static str {
    membound_sim::SIM_FINGERPRINT
}

const INDEX_FILE: &str = "index.jsonl";
const OBJECTS_DIR: &str = "objects";
const LOCK_FILE: &str = ".lock";

/// Take the cache directory's cross-process mutation lock (blocking).
fn lock_cache_dir(dir: &Path) -> std::io::Result<FsLock> {
    FsLock::acquire(&dir.join(LOCK_FILE))
}

fn index_header_line() -> String {
    format!("{{\"kind\":\"cache_header\",\"format_version\":{CACHE_FORMAT_VERSION}}}\n")
}

/// Content address of one cell's result: 32 hex digits (a 128-bit
/// two-pass FNV-1a digest of the canonical key material).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey(String);

impl CacheKey {
    /// The key as lowercase hex; also the object's file stem.
    #[must_use]
    pub fn as_hex(&self) -> &str {
        &self.0
    }

    /// Derive the key for `cell` under `fingerprint`.
    #[must_use]
    pub fn derive(cell: &Cell, fingerprint: &str) -> Self {
        let material = key_material(cell, fingerprint);
        let bytes = material.as_bytes();
        let h1 = fnv1a(FNV_OFFSET, bytes);
        // Second pass from a decorrelated seed: 64 FNV bits collide too
        // easily over the lifetime of a long-lived shared cache.
        let h2 = fnv1a(h1 ^ 0x9e37_79b9_7f4a_7c15, bytes);
        Self(format!("{h1:016x}{h2:016x}"))
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical JSON the key digests. Field order is fixed by this
/// function, never by a serializer, so the rendering is stable across
/// releases by construction.
fn key_material(cell: &Cell, fingerprint: &str) -> String {
    let device = serde_json::to_string(&cell.spec).expect("device spec serializes");
    format!(
        "{{\"cache_format\":{CACHE_FORMAT_VERSION},\
         \"schema_version\":{},\
         \"fingerprint\":{:?},\
         \"kernel\":{:?},\
         \"variant\":{:?},\
         \"workload\":{},\
         \"device\":{}}}",
        telemetry::SCHEMA_VERSION,
        fingerprint,
        cell.kind.kernel(),
        cell.variant,
        workload_json(cell),
        device,
    )
}

fn workload_json(cell: &Cell) -> String {
    use crate::runner::CellKind;
    match &cell.kind {
        CellKind::Transpose { cfg, .. } => {
            format!("{{\"n\":{},\"block\":{}}}", cfg.n, cfg.block)
        }
        CellKind::Blur { cfg, .. } => blur_json(cfg, None),
        CellKind::FusedBlur { cfg, threads } => blur_json(cfg, Some(*threads)),
        CellKind::Stream { op, level } => {
            let level = match level {
                Some(l) => format!("{l}"),
                None => "null".into(),
            };
            format!("{{\"op\":{:?},\"level\":{level}}}", op.label())
        }
        CellKind::Gbmv { cfg, .. } => format!(
            "{{\"n\":{},\"kl\":{},\"ku\":{},\"block\":{}}}",
            cfg.n, cfg.kl, cfg.ku, cfg.block
        ),
    }
}

fn blur_json(cfg: &crate::blur::BlurConfig, threads: Option<u32>) -> String {
    let sigma = match cfg.sigma {
        Some(s) => format!("{s:?}"),
        None => "null".into(),
    };
    let threads = match threads {
        Some(t) => format!(",\"threads\":{t}"),
        None => String::new(),
    };
    format!(
        "{{\"height\":{},\"width\":{},\"channels\":{},\"filter_size\":{},\"sigma\":{sigma}{threads}}}",
        cfg.height, cfg.width, cfg.channels, cfg.filter_size,
    )
}

/// A cache hit, ready to become [`CellOutcome::Cached`]. Mirrors the
/// three outcome shapes worth memoizing — everything else (panics,
/// timeouts) describes a *run*, not the cell's value, and is never
/// cached.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedOutcome {
    /// A report-bearing cell's telemetry record (transpose/blur cells).
    Sim(Box<SimRecord>),
    /// A STREAM cell's bandwidth in GB/s.
    Gbps(f64),
    /// The workload exceeds the device's memory.
    DoesNotFit,
}

/// One persisted cell result: the payload line of an object file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Always `"cache_entry"`.
    pub kind: String,
    /// [`CACHE_FORMAT_VERSION`] at write time.
    pub format_version: u32,
    /// [`telemetry::SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Sim-code fingerprint the result was simulated under.
    pub fingerprint: String,
    /// The entry's own [`CacheKey`] (hex); must match the file stem.
    pub key: String,
    /// Kernel family, for `stats`/`verify` reporting.
    pub kernel: String,
    /// Variant label, for `stats`/`verify` reporting.
    pub variant: String,
    /// Device label, for `stats`/`verify` reporting.
    pub device: String,
    /// `"ok"` or `"does_not_fit"` (the only cacheable statuses).
    pub status: String,
    /// Telemetry record of a report-bearing cell.
    pub sim: Option<SimRecord>,
    /// Bandwidth of a STREAM cell.
    pub gbps: Option<f64>,
    /// Host wall seconds of the original simulation (diagnostic; lets a
    /// warm run report how much simulation time the cache saved).
    pub wall_seconds: f64,
    /// Wall-clock insert time, milliseconds since the Unix epoch.
    pub inserted_unix_ms: u64,
}

impl CacheEntry {
    /// Build the entry a cell's outcome should persist, or `None` when
    /// the outcome is not cacheable (panicked/failed/timed-out — those
    /// describe the run, not the cell — or already cached).
    #[must_use]
    pub fn capture(
        fingerprint: &str,
        key: &CacheKey,
        cell: &Cell,
        outcome: &CellOutcome,
        wall_seconds: f64,
    ) -> Option<Self> {
        let (status, sim, gbps) = match outcome {
            CellOutcome::Report(report) => (
                telemetry::status::OK,
                Some(SimRecord::from_report(report)),
                None,
            ),
            // A resumed cell's record is as authoritative as a fresh
            // one: inserting it lets a later run hit the cache.
            CellOutcome::Restored(rec) => (telemetry::status::OK, Some(rec.as_ref().clone()), None),
            CellOutcome::Gbps(g) => (telemetry::status::OK, None, Some(*g)),
            CellOutcome::DoesNotFit => (telemetry::status::DOES_NOT_FIT, None, None),
            CellOutcome::Cached(_)
            | CellOutcome::Panicked(_)
            | CellOutcome::Failed(_)
            | CellOutcome::TimedOut(_) => return None,
        };
        let inserted_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Some(Self {
            kind: "cache_entry".into(),
            format_version: CACHE_FORMAT_VERSION,
            schema_version: telemetry::SCHEMA_VERSION,
            fingerprint: fingerprint.into(),
            key: key.as_hex().into(),
            kernel: cell.kind.kernel().into(),
            variant: cell.variant.clone(),
            device: cell.device.clone(),
            status: status.into(),
            sim,
            gbps,
            wall_seconds,
            inserted_unix_ms,
        })
    }

    /// The outcome this entry restores, or `None` when the payload is
    /// internally inconsistent (e.g. `ok` with no result) — treated as
    /// corruption by the caller.
    #[must_use]
    pub fn outcome(&self) -> Option<CachedOutcome> {
        match self.status.as_str() {
            telemetry::status::OK => {
                if let Some(sim) = &self.sim {
                    Some(CachedOutcome::Sim(Box::new(sim.clone())))
                } else {
                    self.gbps.map(CachedOutcome::Gbps)
                }
            }
            telemetry::status::DOES_NOT_FIT => Some(CachedOutcome::DoesNotFit),
            _ => None,
        }
    }
}

/// Render an entry as its two-line object file: the payload line
/// followed by the payload's own FNV-1a digest, so torn or bit-rotted
/// objects are detectable without trusting any other file.
fn render_object(entry: &CacheEntry) -> String {
    let payload = serde_json::to_string(entry).expect("cache entry serializes");
    let digest = format!("{:016x}", fnv1a(FNV_OFFSET, payload.as_bytes()));
    format!("{payload}\n{digest}\n")
}

/// Parse and fully verify an object file's text.
fn parse_object(text: &str) -> Result<CacheEntry, String> {
    let mut lines = text.lines();
    let payload = lines.next().ok_or("empty object")?;
    let digest = lines.next().ok_or("missing digest line (torn write)")?;
    if lines.next().is_some_and(|l| !l.trim().is_empty()) {
        return Err("trailing garbage after digest line".into());
    }
    let want = format!("{:016x}", fnv1a(FNV_OFFSET, payload.as_bytes()));
    if digest.trim() != want {
        return Err(format!("digest mismatch (stored {digest:?})"));
    }
    let entry: CacheEntry =
        serde_json::from_str(payload).map_err(|e| format!("bad payload: {e:?}"))?;
    if entry.kind != "cache_entry" {
        return Err(format!("kind {:?}, expected \"cache_entry\"", entry.kind));
    }
    Ok(entry)
}

/// How a surveyed object or index line was classified.
fn is_stale(entry: &CacheEntry, fingerprint: &str) -> bool {
    entry.format_version != CACHE_FORMAT_VERSION
        || entry.schema_version != telemetry::SCHEMA_VERSION
        || entry.fingerprint != fingerprint
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    fingerprint: String,
}

/// Handle to one on-disk result cache; cheap to clone, safe to use from
/// concurrent engine workers *and* concurrent processes (see the module
/// docs). Deliberately holds no open index descriptor: each append
/// reopens the index under the directory lock, so a handle that
/// outlives a concurrent [`gc`] rebuild keeps appending to the *new*
/// index instead of a renamed-away orphan inode.
#[derive(Debug, Clone)]
pub struct ResultCache {
    inner: Arc<Inner>,
}

impl ResultCache {
    /// Open (creating if necessary) the cache at `dir` with the default
    /// sim-code fingerprint.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory layout or the index, and a
    /// corrupt or future-versioned index *header* (torn tail lines are
    /// tolerated — see the module docs).
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        Self::open_with_fingerprint(dir, default_fingerprint())
    }

    /// [`ResultCache::open`] with an explicit fingerprint (tests use
    /// this to exercise stale-entry behaviour).
    ///
    /// # Errors
    ///
    /// As [`ResultCache::open`].
    pub fn open_with_fingerprint(dir: &Path, fingerprint: &str) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir.join(OBJECTS_DIR))?;
        let _lock = lock_cache_dir(dir)?;
        let index_path = dir.join(INDEX_FILE);
        let existing = match std::fs::read_to_string(&index_path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let mut index = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&index_path)?;
        match existing.as_deref() {
            None | Some("") => {
                index.write_all(index_header_line().as_bytes())?;
                index.sync_data()?;
            }
            Some(text) => {
                let first = text.lines().next().unwrap_or("");
                let ok = serde_json::value_from_str(first)
                    .ok()
                    .is_some_and(|v| index_header_ok(&v));
                if !ok {
                    return Err(std::io::Error::other(format!(
                        "{}: not a membound result-cache index (bad header line); \
                         refusing to append — move the directory aside or delete it",
                        index_path.display()
                    )));
                }
                // Heal a torn tail: without this, the next append would
                // splice onto the half-written line and corrupt an
                // otherwise parseable journal.
                if !text.ends_with('\n') {
                    index.write_all(b"\n")?;
                    index.sync_data()?;
                }
            }
        }
        Ok(Self {
            inner: Arc::new(Inner {
                dir: dir.to_path_buf(),
                fingerprint: fingerprint.into(),
            }),
        })
    }

    /// Directory this cache lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Fingerprint baked into this handle's keys.
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.inner.fingerprint
    }

    /// The key `cell` is stored under in this cache.
    #[must_use]
    pub fn key_for(&self, cell: &Cell) -> CacheKey {
        CacheKey::derive(cell, &self.inner.fingerprint)
    }

    fn object_path(&self, key: &CacheKey) -> PathBuf {
        self.inner
            .dir
            .join(OBJECTS_DIR)
            .join(format!("{}.json", key.as_hex()))
    }

    /// Look `key` up, verifying the stored object end to end. A corrupt
    /// or torn object is *discarded* (deleted, with a stderr warning)
    /// and reported as a miss — the caller re-simulates; nothing is
    /// ever trusted past a failed check. A verifiable entry written
    /// under a different fingerprint or schema is left in place (it is
    /// unreachable from this handle's keys anyway; [`gc`] reclaims it)
    /// and reported as a miss.
    #[must_use]
    pub fn lookup(&self, key: &CacheKey) -> Option<CacheEntry> {
        let path = self.object_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!(
                    "warning: result cache: reading {} failed ({e}); treating as a miss",
                    path.display()
                );
                return None;
            }
        };
        let discard = |why: &str| {
            eprintln!(
                "warning: result cache: discarding corrupt entry {} ({why}); re-simulating",
                path.display()
            );
            let _ = std::fs::remove_file(&path);
        };
        let entry = match parse_object(&text) {
            Ok(entry) => entry,
            Err(why) => {
                discard(&why);
                return None;
            }
        };
        if entry.key != key.as_hex() {
            discard("stored under the wrong key");
            return None;
        }
        if is_stale(&entry, &self.inner.fingerprint) {
            // Only reachable when the object was renamed by hand: the
            // fingerprint and versions are part of the key derivation.
            return None;
        }
        if entry.outcome().is_none() {
            discard("inconsistent payload (status carries no result)");
            return None;
        }
        Some(entry)
    }

    /// Persist `entry` under `key`: take the directory's cross-process
    /// lock, write the object atomically, call `mid` (the engine
    /// threads its `cache` failpoint through here, *between* the
    /// object rename and the index append — the exact window a crash
    /// leaves an unindexed object), then append one fsynced line to a
    /// freshly opened index.
    ///
    /// The whole rename + append sequence holds the lock, so a
    /// concurrent [`gc`] rebuild either runs entirely before this
    /// insert (and the fresh append lands in the rebuilt index) or
    /// entirely after (and the walk sees the new object) — it can no
    /// longer interleave and drop this entry's index line. A crash
    /// *inside* the window still leaves only an unindexed object
    /// (`flock` dies with the process), which is the already-recoverable
    /// state.
    ///
    /// Inserting a key that already has an object is an idempotent
    /// overwrite with identical content — concurrent workers and
    /// resumed runs may race to insert the same result; last rename
    /// wins and every version is equally correct.
    ///
    /// # Errors
    ///
    /// Any I/O error from the lock, the object write, or the index
    /// append. The engine treats an insert error as a warning, not a
    /// run failure.
    pub fn insert(
        &self,
        key: &CacheKey,
        entry: &CacheEntry,
        mid: impl FnOnce(),
    ) -> std::io::Result<()> {
        let _lock = lock_cache_dir(&self.inner.dir)?;
        telemetry::write_text_atomic(&self.object_path(key), &render_object(entry))?;
        mid();
        let line = format!(
            "{{\"kind\":\"insert\",\"key\":{:?},\"inserted_unix_ms\":{}}}\n",
            key.as_hex(),
            entry.inserted_unix_ms
        );
        self.append_index_line(&line)
    }

    /// Append one line to the index, reopening it under the (already
    /// held) directory lock. Reopening is the stale-descriptor fix: a
    /// `gc` that rebuilt the index renamed a new file into place, and
    /// only a fresh open observes it. A missing or empty index (first
    /// insert, or a rebuild interrupted before its rename) gets its
    /// header written first; a torn tail is healed exactly as at open.
    fn append_index_line(&self, line: &str) -> std::io::Result<()> {
        let index_path = self.inner.dir.join(INDEX_FILE);
        let mut index = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&index_path)?;
        let len = index.metadata()?.len();
        if len == 0 {
            index.write_all(index_header_line().as_bytes())?;
        } else if last_byte(&index_path)? != Some(b'\n') {
            index.write_all(b"\n")?;
        }
        index.write_all(line.as_bytes())?;
        index.sync_data()
    }
}

/// The final byte of the file at `path`, or `None` when it is empty.
fn last_byte(path: &Path) -> std::io::Result<Option<u8>> {
    let mut f = std::fs::File::open(path)?;
    if f.metadata()?.len() == 0 {
        return Ok(None);
    }
    f.seek(std::io::SeekFrom::End(-1))?;
    let mut buf = [0u8; 1];
    f.read_exact(&mut buf)?;
    Ok(Some(buf[0]))
}

fn index_header_ok(v: &serde::Value) -> bool {
    v.get("kind").and_then(serde::Value::as_str) == Some("cache_header")
        && v.get("format_version").and_then(serde::Value::as_u64)
            == Some(u64::from(CACHE_FORMAT_VERSION))
}

/// What a [`survey`] of a cache directory found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheSurvey {
    /// Verifiable entries under the surveyed fingerprint and current
    /// versions — the entries lookups can actually hit.
    pub live: u64,
    /// Verifiable entries under another fingerprint or older versions:
    /// unreachable, reclaimable by [`gc`].
    pub stale: u64,
    /// Objects that failed verification (torn, bit-rotted, or
    /// misnamed). Never trusted; [`gc`] deletes them.
    pub corrupt: u64,
    /// Leftover `.tmp` files from interrupted atomic writes.
    pub temps: u64,
    /// Live objects missing from the index (crash between object
    /// rename and index append); still hits, re-indexed by [`gc`].
    pub unindexed: u64,
    /// Index lines whose object no longer exists.
    pub dangling: u64,
    /// Unparseable index lines (torn appends); harmless, cleaned by
    /// [`gc`].
    pub index_garbage: u64,
    /// Total bytes under `objects/`.
    pub object_bytes: u64,
    /// Human-readable description of every corrupt object found.
    pub problems: Vec<String>,
}

impl CacheSurvey {
    /// Whether every object verified (stale entries and index damage
    /// are recoverable bookkeeping, not corruption).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0
    }
}

/// Verdict on one file under `objects/`.
enum ObjectClass {
    /// Verifies end to end under the surveyed fingerprint and versions.
    Live,
    /// Verifies, but was written under another fingerprint or older
    /// versions — unreachable from current keys.
    Stale,
    /// Fails verification; never trusted.
    Corrupt(String),
}

fn classify_object(path: &Path, name: &str, fingerprint: &str) -> ObjectClass {
    let stem = name.strip_suffix(".json").unwrap_or("");
    if stem.len() != 32 || !stem.bytes().all(|b| b.is_ascii_hexdigit()) {
        return ObjectClass::Corrupt("not a cache object name".into());
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return ObjectClass::Corrupt(format!("unreadable: {e}")),
    };
    let parsed = match parse_object(&text) {
        Ok(parsed) => parsed,
        Err(why) => return ObjectClass::Corrupt(why),
    };
    if parsed.key != stem {
        return ObjectClass::Corrupt("stored under the wrong key".into());
    }
    if is_stale(&parsed, fingerprint) {
        return ObjectClass::Stale;
    }
    if parsed.outcome().is_none() {
        return ObjectClass::Corrupt("inconsistent payload (status carries no result)".into());
    }
    ObjectClass::Live
}

fn read_index_keys(dir: &Path) -> (BTreeSet<String>, u64) {
    let mut keys = BTreeSet::new();
    let mut garbage = 0u64;
    let Ok(text) = std::fs::read_to_string(dir.join(INDEX_FILE)) else {
        return (keys, garbage);
    };
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::value_from_str(line) {
            Ok(v) if i == 0 && index_header_ok(&v) => {}
            Ok(v) if v.get("kind").and_then(serde::Value::as_str) == Some("insert") => {
                match v.get("key").and_then(serde::Value::as_str) {
                    Some(k) => {
                        keys.insert(k.to_string());
                    }
                    None => garbage += 1,
                }
            }
            _ => garbage += 1,
        }
    }
    (keys, garbage)
}

/// Walk the cache at `dir`, verifying every object against
/// `fingerprint` and cross-checking the index. Read-only: nothing is
/// modified, so `verify` can run concurrently with live runs.
///
/// # Errors
///
/// Only filesystem errors walking the directory; a missing `objects/`
/// dir surveys as empty.
pub fn survey(dir: &Path, fingerprint: &str) -> std::io::Result<CacheSurvey> {
    let mut s = CacheSurvey::default();
    let (indexed, garbage) = read_index_keys(dir);
    s.index_garbage = garbage;
    let objects = dir.join(OBJECTS_DIR);
    let entries = match std::fs::read_dir(&objects) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            s.dangling = indexed.len() as u64;
            return Ok(s);
        }
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        s.object_bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
        if name.ends_with(".tmp") {
            s.temps += 1;
            continue;
        }
        match classify_object(&path, &name, fingerprint) {
            ObjectClass::Live => {
                s.live += 1;
                let stem = name.strip_suffix(".json").unwrap_or("");
                if !indexed.contains(stem) {
                    s.unindexed += 1;
                }
            }
            ObjectClass::Stale => s.stale += 1,
            ObjectClass::Corrupt(why) => {
                s.corrupt += 1;
                s.problems.push(format!("{}: {why}", path.display()));
            }
        }
    }
    s.dangling = indexed
        .iter()
        .filter(|k| !objects.join(format!("{k}.json")).exists())
        .count() as u64;
    Ok(s)
}

/// What [`gc`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Live entries kept (never removed, whatever the index said).
    pub kept: u64,
    /// Stale (wrong fingerprint/version) objects deleted.
    pub removed_stale: u64,
    /// Corrupt objects deleted.
    pub removed_corrupt: u64,
    /// Interrupted `.tmp` files deleted.
    pub removed_temps: u64,
}

/// Reclaim the cache at `dir`: delete corrupt objects, `.tmp`
/// leftovers, and entries stale under `fingerprint`, then atomically
/// rewrite the index from the surviving live objects (which also
/// re-indexes objects a crash left unindexed and drops dangling or
/// garbage index lines). Live entries are never removed — recovery is
/// idempotent.
///
/// The walk *and* the rewrite run under the directory's cross-process
/// lock, so gc serializes against every concurrent [`ResultCache::insert`]
/// (from this process or any other): an insert completes either before
/// the walk (its object is kept and re-indexed) or after the rewrite
/// (its fresh append lands in the rebuilt index) — never in between,
/// where its index line used to be silently dropped.
///
/// # Errors
///
/// Filesystem errors taking the lock, walking `dir`, or rewriting the
/// index.
pub fn gc(dir: &Path, fingerprint: &str) -> std::io::Result<GcOutcome> {
    let mut out = GcOutcome::default();
    let objects = dir.join(OBJECTS_DIR);
    if !objects.exists() {
        return Ok(out);
    }
    let _lock = lock_cache_dir(dir)?;
    let mut live = BTreeSet::new();
    let entries = match std::fs::read_dir(&objects) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            std::fs::remove_file(&path)?;
            out.removed_temps += 1;
            continue;
        }
        match classify_object(&path, &name, fingerprint) {
            ObjectClass::Live => {
                live.insert(name.strip_suffix(".json").unwrap_or("").to_string());
                out.kept += 1;
            }
            ObjectClass::Stale => {
                std::fs::remove_file(&path)?;
                out.removed_stale += 1;
            }
            ObjectClass::Corrupt(_) => {
                std::fs::remove_file(&path)?;
                out.removed_corrupt += 1;
            }
        }
    }
    let mut index = index_header_line();
    for key in &live {
        index.push_str(&format!(
            "{{\"kind\":\"insert\",\"key\":{key:?},\"inserted_unix_ms\":0}}\n"
        ));
    }
    telemetry::write_text_atomic(&dir.join(INDEX_FILE), &index)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CellKind;
    use crate::transpose::{TransposeConfig, TransposeVariant};
    use membound_sim::Device;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("membound_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn transpose_cell(n: usize, variant: TransposeVariant) -> Cell {
        Cell::transpose(
            format!("{n}"),
            Device::MangoPiMqPro.label(),
            &Device::MangoPiMqPro.spec(),
            variant,
            TransposeConfig::with_block(n, 16),
        )
    }

    fn sample_entry(cache: &ResultCache, cell: &Cell) -> (CacheKey, CacheEntry) {
        let key = cache.key_for(cell);
        let outcome = CellOutcome::DoesNotFit;
        let entry = CacheEntry::capture(cache.fingerprint(), &key, cell, &outcome, 0.5).unwrap();
        (key, entry)
    }

    /// Every inventory entry — not just the paper's four — must
    /// round-trip through the selection path (`matching` finds it,
    /// `select` on its exact preset name resolves it uniquely), produce
    /// a serializable spec, and yield a cache key distinct from every
    /// other device's for the same workload. Guards against new presets
    /// being reachable by sweep code but invisible (or colliding) in
    /// the device-filter and cache layers.
    #[test]
    fn every_device_round_trips_through_selection_spec_and_cache_key() {
        let cell = transpose_cell(64, TransposeVariant::Naive);
        let mut keys = std::collections::BTreeSet::new();
        for &device in Device::all() {
            assert!(
                Device::matching(device.label()).contains(&device),
                "{device}: label must match itself"
            );
            let by_name = Device::select(&format!("{device:?}"))
                .unwrap_or_else(|e| panic!("{device}: {e}"));
            assert_eq!(by_name, vec![device], "{device}: preset name is unique");

            let spec = device.spec();
            let json = serde_json::to_string(&spec).expect("spec serializes");
            let back: membound_sim::DeviceSpec =
                serde_json::from_str(&json).expect("spec deserializes");
            assert_eq!(back, spec, "{device}: spec JSON round-trip");

            let mut on_device = cell.clone();
            on_device.device = device.label().into();
            on_device.spec = spec;
            assert!(
                keys.insert(CacheKey::derive(&on_device, "fp-a").as_hex().to_owned()),
                "{device}: cache key collides with another device"
            );
        }
        assert_eq!(keys.len(), Device::all().len());
    }

    #[test]
    fn keys_are_sensitive_to_everything_that_matters() {
        let cell = transpose_cell(128, TransposeVariant::Blocking);
        let base = CacheKey::derive(&cell, "fp-a");

        // Same material, same key.
        assert_eq!(base, CacheKey::derive(&cell, "fp-a"));

        // Fingerprint, workload size, variant/schedule, and device all
        // change the key.
        assert_ne!(base, CacheKey::derive(&cell, "fp-b"));
        assert_ne!(
            base,
            CacheKey::derive(&transpose_cell(256, TransposeVariant::Blocking), "fp-a")
        );
        assert_ne!(
            base,
            CacheKey::derive(&transpose_cell(128, TransposeVariant::Dynamic), "fp-a")
        );
        let mut other_device = cell.clone();
        other_device.spec = Device::StarFiveVisionFive.spec();
        assert_ne!(base, CacheKey::derive(&other_device, "fp-a"));

        // The panel label is presentation-only and excluded.
        let mut renamed_panel = cell.clone();
        renamed_panel.panel = "other panel".into();
        assert_eq!(base, CacheKey::derive(&renamed_panel, "fp-a"));

        // The block size is part of the schedule even when the variant
        // label matches.
        let mut cfg_cell = cell;
        if let CellKind::Transpose { cfg, .. } = &mut cfg_cell.kind {
            cfg.block = 32;
        }
        assert_ne!(base, CacheKey::derive(&cfg_cell, "fp-a"));
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let dir = test_dir("roundtrip");
        let cache = ResultCache::open_with_fingerprint(&dir, "fp").unwrap();
        let cell = transpose_cell(128, TransposeVariant::Naive);
        let (key, entry) = sample_entry(&cache, &cell);
        assert!(cache.lookup(&key).is_none(), "cold cache misses");
        cache.insert(&key, &entry, || {}).unwrap();
        let hit = cache.lookup(&key).expect("warm cache hits");
        assert_eq!(hit, entry);
        assert_eq!(hit.outcome(), Some(CachedOutcome::DoesNotFit));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_objects_are_discarded_not_trusted() {
        let dir = test_dir("corrupt");
        let cache = ResultCache::open_with_fingerprint(&dir, "fp").unwrap();
        let cell = transpose_cell(128, TransposeVariant::Naive);
        let (key, entry) = sample_entry(&cache, &cell);
        cache.insert(&key, &entry, || {}).unwrap();

        let path = dir.join(OBJECTS_DIR).join(format!("{}.json", key.as_hex()));
        for garbage in ["", "{torn", "{}\n0000000000000000\n"] {
            std::fs::write(&path, garbage).unwrap();
            assert!(
                cache.lookup(&key).is_none(),
                "garbage {garbage:?} must miss"
            );
            assert!(!path.exists(), "garbage {garbage:?} must be deleted");
            cache.insert(&key, &entry, || {}).unwrap();
        }

        // A truncated (torn) object: payload line only, no digest.
        let full = render_object(&entry);
        let payload_only = &full[..full.find('\n').unwrap() + 1];
        std::fs::write(&path, payload_only).unwrap();
        assert!(cache.lookup(&key).is_none(), "torn object must miss");
        assert!(!path.exists(), "torn object must be deleted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unindexed_objects_still_hit_and_gc_reindexes_them() {
        let dir = test_dir("unindexed");
        let cache = ResultCache::open_with_fingerprint(&dir, "fp").unwrap();
        let cell = transpose_cell(128, TransposeVariant::Naive);
        let (key, entry) = sample_entry(&cache, &cell);
        // Simulate a crash between the object rename and the index
        // append: write the object directly, never touch the index.
        telemetry::write_text_atomic(
            &dir.join(OBJECTS_DIR).join(format!("{}.json", key.as_hex())),
            &render_object(&entry),
        )
        .unwrap();
        assert!(cache.lookup(&key).is_some(), "unindexed object still hits");
        let s = survey(&dir, "fp").unwrap();
        assert_eq!((s.live, s.unindexed), (1, 1));
        let g = gc(&dir, "fp").unwrap();
        assert_eq!(g.kept, 1);
        let s = survey(&dir, "fp").unwrap();
        assert_eq!((s.live, s.unindexed), (1, 0), "gc re-indexed the object");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_index_tail_is_healed_on_reopen() {
        let dir = test_dir("torn_index");
        let cache = ResultCache::open_with_fingerprint(&dir, "fp").unwrap();
        let cell = transpose_cell(128, TransposeVariant::Naive);
        let (key, entry) = sample_entry(&cache, &cell);
        cache.insert(&key, &entry, || {}).unwrap();
        drop(cache);
        // Tear the index mid-append.
        let index_path = dir.join(INDEX_FILE);
        let text = std::fs::read_to_string(&index_path).unwrap();
        std::fs::write(&index_path, &text[..text.len() - 10]).unwrap();

        let cache = ResultCache::open_with_fingerprint(&dir, "fp").unwrap();
        assert!(
            cache.lookup(&key).is_some(),
            "objects are untouched by index damage"
        );
        let cell2 = transpose_cell(256, TransposeVariant::Naive);
        let (key2, entry2) = sample_entry(&cache, &cell2);
        cache.insert(&key2, &entry2, || {}).unwrap();
        let s = survey(&dir, "fp").unwrap();
        assert_eq!(s.live, 2);
        assert_eq!(s.index_garbage, 1, "the torn line is isolated, not spliced");
        assert!(s.is_clean());
        let _ = gc(&dir, "fp").unwrap();
        let s = survey(&dir, "fp").unwrap();
        assert_eq!(s.index_garbage, 0, "gc rewrote the index");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_removes_stale_and_corrupt_but_never_live() {
        let dir = test_dir("gc");
        let old = ResultCache::open_with_fingerprint(&dir, "fp-old").unwrap();
        let new = ResultCache::open_with_fingerprint(&dir, "fp-new").unwrap();
        let cell = transpose_cell(128, TransposeVariant::Naive);
        let (old_key, old_entry) = sample_entry(&old, &cell);
        old.insert(&old_key, &old_entry, || {}).unwrap();
        let (new_key, new_entry) = sample_entry(&new, &cell);
        new.insert(&new_key, &new_entry, || {}).unwrap();
        std::fs::write(dir.join(OBJECTS_DIR).join("nonsense.json"), "{").unwrap();
        std::fs::write(dir.join(OBJECTS_DIR).join(".x.json.tmp"), "half").unwrap();

        let s = survey(&dir, "fp-new").unwrap();
        assert_eq!((s.live, s.stale, s.corrupt, s.temps), (1, 1, 1, 1));
        assert!(!s.is_clean());

        let g = gc(&dir, "fp-new").unwrap();
        assert_eq!(
            (g.kept, g.removed_stale, g.removed_corrupt, g.removed_temps),
            (1, 1, 1, 1)
        );
        assert!(new.lookup(&new_key).is_some(), "live entry survived gc");
        assert!(old.lookup(&old_key).is_none(), "stale entry reclaimed");
        let s = survey(&dir, "fp-new").unwrap();
        assert_eq!((s.live, s.stale, s.corrupt, s.temps), (1, 0, 0, 0));
        assert!(s.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: a handle that outlives a `gc` rebuild used to keep
    /// an append descriptor pointing at the *renamed-away* index inode,
    /// so every later insert's journal line was written into the void.
    /// With per-append reopens, an insert after gc must land in the
    /// rebuilt index.
    #[test]
    fn inserts_after_gc_land_in_the_rebuilt_index() {
        let dir = test_dir("stale_fd");
        let cache = ResultCache::open_with_fingerprint(&dir, "fp").unwrap();
        let (key_a, entry_a) = sample_entry(&cache, &transpose_cell(128, TransposeVariant::Naive));
        cache.insert(&key_a, &entry_a, || {}).unwrap();

        // Rebuild the index while the handle stays open.
        let g = gc(&dir, "fp").unwrap();
        assert_eq!(g.kept, 1);

        let (key_b, entry_b) =
            sample_entry(&cache, &transpose_cell(256, TransposeVariant::Blocking));
        cache.insert(&key_b, &entry_b, || {}).unwrap();

        let index = std::fs::read_to_string(dir.join(INDEX_FILE)).unwrap();
        assert!(
            index.contains(key_b.as_hex()),
            "post-gc insert must append to the rebuilt index, not an orphan inode"
        );
        let s = survey(&dir, "fp").unwrap();
        assert_eq!(
            (s.live, s.unindexed, s.dangling, s.index_garbage),
            (2, 0, 0, 0),
            "{s:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: a `gc` rebuild racing an insert could walk `objects/`
    /// before the insert's rename and rewrite the index after its
    /// append, dropping the live entry's index line. The directory lock
    /// makes the two atomic with respect to each other: whatever the
    /// timing, the store must end with every live object indexed. The
    /// insert is parked mid-window (between rename and append — the
    /// same hole the engine's `cache` failpoint site exposes) while gc
    /// is invited to interleave.
    #[test]
    fn gc_racing_an_insert_never_drops_an_index_line() {
        let dir = test_dir("interleave");
        let cache = ResultCache::open_with_fingerprint(&dir, "fp").unwrap();
        let (key_a, entry_a) = sample_entry(&cache, &transpose_cell(128, TransposeVariant::Naive));
        cache.insert(&key_a, &entry_a, || {}).unwrap();

        let (key_b, entry_b) =
            sample_entry(&cache, &transpose_cell(256, TransposeVariant::Blocking));
        let in_window = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let gc_thread = scope.spawn(|| {
                // Let the insert reach the rename→append window first so
                // gc genuinely contends with a mid-flight insert.
                while !in_window.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::yield_now();
                }
                gc(&dir, "fp").expect("gc under contention")
            });
            cache
                .insert(&key_b, &entry_b, || {
                    in_window.store(true, std::sync::atomic::Ordering::Release);
                    // Hold the window open long enough for gc to be
                    // blocked on the lock rather than not yet started.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                })
                .expect("insert under contention");
            gc_thread.join().expect("gc thread");
        });

        let index = std::fs::read_to_string(dir.join(INDEX_FILE)).unwrap();
        assert!(index.contains(key_a.as_hex()), "pre-existing entry indexed");
        assert!(
            index.contains(key_b.as_hex()),
            "racing insert's index line must survive the gc rebuild"
        );
        let s = survey(&dir, "fp").unwrap();
        assert_eq!(
            (s.live, s.unindexed, s.dangling, s.index_garbage),
            (2, 0, 0, 0),
            "{s:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_directories_are_refused() {
        let dir = test_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(INDEX_FILE), "this is not a cache index\n").unwrap();
        let err = ResultCache::open_with_fingerprint(&dir, "fp").unwrap_err();
        assert!(
            err.to_string()
                .contains("not a membound result-cache index"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
