//! The parallel experiment engine.
//!
//! Every figure of the reproduction is a matrix of *cells* — one kernel
//! variant on one device at one workload — and every cell is an
//! independent, deterministic simulation. The figure binaries used to
//! walk that matrix serially; this module shards it across
//! [`membound_parallel::Pool::run_tasks`] instead:
//!
//! * [`ExperimentMatrix`] declares the cells (and optional per-device
//!   STREAM baselines for the §3.3 utilization metric);
//! * [`Engine`] executes them on `jobs` worker threads — from `--jobs`,
//!   the `MEMBOUND_JOBS` environment variable, or the host core count
//!   (see [`resolve_jobs`]) — catching per-cell panics so one bad cell
//!   cannot take down a whole figure run;
//! * [`RunResults`] holds the outcomes *in cell order*, attaches
//!   speedup-vs-baseline per ladder, and renders the versioned JSONL
//!   run log of [`crate::telemetry`].
//!
//! The `jobs` value is one shared [`JobBudget`] across *two* nested
//! parallel layers: the engine's per-cell sharding leases one slot per
//! outer worker, and each cell's [`membound_sim::Machine`] leases the
//! spare slots to replay its simulated cores concurrently. `--jobs N`
//! therefore bounds the total number of concurrently running host
//! threads instead of multiplying into `cells × cores` (see DESIGN.md
//! §9).
//!
//! Parallel runs are bit-identical to serial ones: the simulator is
//! deterministic and results are slotted by cell index (and per-core
//! outcomes by tid), so the per-cell [`SimReport`]s (and therefore
//! their [`stats_digest`](SimReport::stats_digest)s and the run log's
//! simulated fields) do not depend on the job count. Only host wall
//! times and worker counts differ.

use crate::blur::{BlurConfig, BlurVariant};
use crate::cache::{CacheEntry, CacheKey, CachedOutcome, ResultCache};
use crate::experiment;
use crate::gbmv::{GbmvConfig, GbmvVariant};
use crate::metrics::speedup;
use crate::stream::StreamOp;
use crate::telemetry::{self, CellRecord, PartialRunLog, RunHeader, SimRecord, StreamingRunLog};
use crate::transpose::{traced::TransposeTrace, TransposeConfig, TransposeVariant};
use membound_parallel::{Failpoint, JobBudget, Pool, Task};
use membound_sim::{DeviceSpec, SimReport};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// How many worker threads to use, resolved from (in precedence order)
/// an explicit `--jobs` value, the `MEMBOUND_JOBS` environment variable,
/// and the host's available parallelism.
///
/// A requested value of `0` is clamped to one worker with a warning: in
/// this codebase "zero workers" is the [`JobBudget::serial`] convention
/// — run on the calling thread with no extra parallelism — and one
/// pool worker is exactly that, but the clamp should never be silent.
#[must_use]
pub fn resolve_jobs(cli: Option<u32>) -> u32 {
    if let Some(n) = cli {
        if n == 0 {
            eprintln!(
                "warning: --jobs 0 means serial execution (the JobBudget::serial \
                 convention); clamping to 1 worker"
            );
        }
        return n.max(1);
    }
    if let Ok(v) = std::env::var("MEMBOUND_JOBS") {
        if let Ok(n) = v.trim().parse::<u32>() {
            if n == 0 {
                eprintln!(
                    "warning: MEMBOUND_JOBS=0 means serial execution (the \
                     JobBudget::serial convention); clamping to 1 worker"
                );
            }
            return n.max(1);
        }
        eprintln!(
            "warning: ignoring unparseable MEMBOUND_JOBS value {:?}; \
             falling back to available parallelism",
            v
        );
    }
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
}

/// What one cell simulates.
#[derive(Debug, Clone)]
pub enum CellKind {
    /// One transpose variant ([`experiment::simulate_transpose`]).
    Transpose {
        /// Ladder variant.
        variant: TransposeVariant,
        /// Matrix workload.
        cfg: TransposeConfig,
    },
    /// One blur variant ([`experiment::simulate_blur`]).
    Blur {
        /// Ladder variant.
        variant: BlurVariant,
        /// Image workload.
        cfg: BlurConfig,
    },
    /// The fused-blur extension ([`experiment::simulate_fused_blur`]).
    FusedBlur {
        /// Image workload.
        cfg: BlurConfig,
        /// Simulated threads (clamped to the device's cores).
        threads: u32,
    },
    /// One STREAM measurement ([`experiment::simulate_stream`]).
    Stream {
        /// STREAM operation.
        op: StreamOp,
        /// Cache level index, or `None` for DRAM.
        level: Option<usize>,
    },
    /// One band-matrix `gbmv` variant ([`experiment::simulate_gbmv`]).
    Gbmv {
        /// Ladder variant.
        variant: GbmvVariant,
        /// Band workload.
        cfg: GbmvConfig,
    },
}

impl CellKind {
    /// Bytes the kernel must move between DRAM and the CPU, when the
    /// §3.3 utilization metric applies to this kind of cell.
    #[must_use]
    pub fn nominal_bytes(&self) -> Option<u64> {
        match self {
            CellKind::Transpose { cfg, .. } => Some(cfg.nominal_bytes()),
            CellKind::Blur { cfg, .. } | CellKind::FusedBlur { cfg, .. } => {
                Some(cfg.nominal_bytes())
            }
            CellKind::Stream { .. } => None,
            CellKind::Gbmv { cfg, .. } => Some(cfg.nominal_bytes()),
        }
    }

    /// Kernel-family label in the telemetry schema (and the result
    /// cache's key material): `"transpose"`, `"blur"`, `"fused_blur"`,
    /// `"stream"`, or `"gbmv"`.
    #[must_use]
    pub fn kernel(&self) -> &'static str {
        match self {
            CellKind::Transpose { .. } => "transpose",
            CellKind::Blur { .. } => "blur",
            CellKind::FusedBlur { .. } => "fused_blur",
            CellKind::Stream { .. } => "stream",
            CellKind::Gbmv { .. } => "gbmv",
        }
    }
}

/// One cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload panel label (e.g. the matrix size, `"2048"`).
    pub panel: String,
    /// Device label (for grouping and the run log).
    pub device: String,
    /// Variant label within the ladder.
    pub variant: String,
    /// Device model to simulate on.
    pub spec: DeviceSpec,
    /// What to simulate.
    pub kind: CellKind,
}

impl Cell {
    /// A transpose cell.
    #[must_use]
    pub fn transpose(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        variant: TransposeVariant,
        cfg: TransposeConfig,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: variant.label().into(),
            spec: spec.clone(),
            kind: CellKind::Transpose { variant, cfg },
        }
    }

    /// A blur cell.
    #[must_use]
    pub fn blur(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        variant: BlurVariant,
        cfg: BlurConfig,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: variant.label().into(),
            spec: spec.clone(),
            kind: CellKind::Blur { variant, cfg },
        }
    }

    /// A fused-blur cell.
    #[must_use]
    pub fn fused_blur(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        cfg: BlurConfig,
        threads: u32,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: "Fused".into(),
            spec: spec.clone(),
            kind: CellKind::FusedBlur { cfg, threads },
        }
    }

    /// A STREAM cell (`level` is a cache index, `None` for DRAM).
    #[must_use]
    pub fn stream(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        op: StreamOp,
        level: Option<usize>,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: op.label().into(),
            spec: spec.clone(),
            kind: CellKind::Stream { op, level },
        }
    }

    /// A band-matrix `gbmv` cell.
    #[must_use]
    pub fn gbmv(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        variant: GbmvVariant,
        cfg: GbmvConfig,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: variant.label().into(),
            spec: spec.clone(),
            kind: CellKind::Gbmv { variant, cfg },
        }
    }

    /// Key of the speedup ladder this cell belongs to.
    fn ladder_key(&self) -> (String, String, &'static str) {
        (self.panel.clone(), self.device.clone(), self.kind.kernel())
    }

    /// Canonical description of the exact trace-replay this cell
    /// performs: two cells with equal identities simulate the same
    /// reference stream on the same device model and therefore produce
    /// byte-identical reports, so the engine runs one and reuses the
    /// result for the other (in-run dedupe).
    ///
    /// For transpose cells the identity is *weaker than the variant
    /// label*: it is the generator arm `trace_outer` dispatches to plus
    /// the planned per-thread iteration ranges (adjacent ranges merged —
    /// the generator is invoked per range back to back, so only the
    /// concatenation reaches the sink). On a single-core device this
    /// collapses `Parallel` onto `Naive` and `Dynamic` onto
    /// `Manual_blocking`, which the figure tables show as genuinely
    /// identical rows. Every other kind keeps its full
    /// (kernel, variant, workload) identity, so only literal duplicates
    /// dedupe.
    fn trace_identity(&self) -> String {
        let device = serde_json::to_string(&self.spec).expect("device spec serializes");
        match &self.kind {
            CellKind::Transpose { variant, cfg } => {
                let threads = if variant.is_parallel() {
                    self.spec.cores
                } else {
                    1
                };
                let trace = TransposeTrace::new(*cfg);
                let total = trace.outer_iterations(*variant);
                let plan = variant
                    .schedule()
                    .plan(total, threads, |i| trace.weight(*variant, i));
                // The arm of `TransposeTrace::trace_outer` the variant
                // selects; variants sharing an arm differ only in their
                // schedule, which the plan below captures.
                let arm = match variant {
                    TransposeVariant::Naive | TransposeVariant::Parallel => "rowwise",
                    TransposeVariant::Blocking => "blocked",
                    TransposeVariant::ManualBlocking | TransposeVariant::Dynamic => "manual",
                };
                let mut ranges = String::new();
                for (tid, thread_plan) in plan.iter().enumerate() {
                    use std::fmt::Write;
                    let _ = write!(ranges, "t{tid}:");
                    let mut merged: Option<std::ops::Range<u64>> = None;
                    for r in thread_plan {
                        match &mut merged {
                            Some(m) if m.end == r.start => m.end = r.end,
                            Some(m) => {
                                let _ = write!(ranges, "{}-{},", m.start, m.end);
                                merged = Some(r.clone());
                            }
                            None => merged = Some(r.clone()),
                        }
                    }
                    if let Some(m) = merged {
                        let _ = write!(ranges, "{}-{},", m.start, m.end);
                    }
                    ranges.push(';');
                }
                format!(
                    "transpose:{arm}:n={},block={},threads={threads},plan={ranges}|{device}",
                    cfg.n, cfg.block
                )
            }
            kind => format!("{}:{}:{kind:?}|{device}", kind.kernel(), self.variant),
        }
    }
}

/// What one executed cell produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// A full simulator report (boxed: it dwarfs the other variants).
    Report(Box<SimReport>),
    /// Measured bandwidth in GB/s (STREAM cells).
    Gbps(f64),
    /// The workload exceeds the device's memory.
    DoesNotFit,
    /// The cell's simulation panicked with no retry budget; contains
    /// the message.
    Panicked(String),
    /// Every attempt under a retry policy panicked; contains the last
    /// message.
    Failed(String),
    /// The cell overran its wall-clock deadline; contains a
    /// description. Any result the late attempt produced was discarded.
    TimedOut(String),
    /// Not re-simulated: the cell's telemetry record was restored from
    /// a `--resume` run log. Carries the same digest-bearing fields a
    /// fresh [`CellOutcome::Report`] would flatten into the log, so a
    /// resumed run's telemetry is byte-identical to an uninterrupted
    /// one in every digest-bearing field.
    Restored(Box<SimRecord>),
    /// Not re-simulated: restored from the persistent content-addressed
    /// result cache (`--cache-dir`, DESIGN.md §12). Like
    /// [`CellOutcome::Restored`], the carried fields are byte-identical
    /// in every digest-bearing field to what a fresh simulation would
    /// produce — the cache key covers everything the result depends on.
    Cached(CachedOutcome),
}

/// One executed cell, in matrix order.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// What it produced.
    pub outcome: CellOutcome,
    /// Host wall-clock seconds the simulation took (nondeterministic;
    /// cumulative over retries; carried over from the original run for
    /// restored and cached cells).
    pub wall_seconds: f64,
    /// Execution attempts behind this result (1 = first try; >1 =
    /// retried after panics).
    pub attempts: u32,
    /// Speedup over the ladder's first successful cell (1.0 for the
    /// baseline itself); `None` when the ladder has no baseline or the
    /// cell produced no report.
    pub speedup_vs_naive: Option<f64>,
    /// The §3.3 utilization metric, when a STREAM baseline was declared
    /// for the device.
    pub bandwidth_utilization: Option<f64>,
}

/// The simulated quantities the figure binaries render, available
/// whether a cell was freshly simulated ([`CellOutcome::Report`]) or
/// restored from a resumed run log ([`CellOutcome::Restored`], which
/// carries no full [`SimReport`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSummary {
    /// Simulated threads (= cores used).
    pub threads: u32,
    /// Simulated duration in seconds.
    pub seconds: f64,
    /// Total DRAM bytes moved (read + written).
    pub dram_bytes_total: u64,
}

impl CellResult {
    /// The simulator report, when the cell was freshly simulated.
    /// Restored cells have no report — use [`CellResult::sim_summary`]
    /// for the rendered quantities, which both kinds carry.
    #[must_use]
    pub fn report(&self) -> Option<&SimReport> {
        match &self.outcome {
            CellOutcome::Report(r) => Some(r.as_ref()),
            _ => None,
        }
    }

    /// The simulated quantities of a report-bearing cell, fresh or
    /// restored.
    #[must_use]
    pub fn sim_summary(&self) -> Option<SimSummary> {
        match &self.outcome {
            CellOutcome::Report(r) => Some(SimSummary {
                threads: r.threads,
                seconds: r.seconds,
                dram_bytes_total: r.dram.bytes_total(),
            }),
            CellOutcome::Restored(rec) | CellOutcome::Cached(CachedOutcome::Sim(rec)) => {
                Some(SimSummary {
                    threads: rec.threads,
                    seconds: rec.seconds,
                    dram_bytes_total: rec.dram_bytes_read + rec.dram_bytes_written,
                })
            }
            _ => None,
        }
    }
}

/// A declared set of cells to execute.
#[derive(Debug, Clone)]
pub struct ExperimentMatrix {
    figure: String,
    cells: Vec<Cell>,
    stream_baselines: Vec<(String, f64)>,
}

impl ExperimentMatrix {
    /// An empty matrix for `figure` (the run log's figure name).
    #[must_use]
    pub fn new(figure: impl Into<String>) -> Self {
        Self {
            figure: figure.into(),
            cells: Vec::new(),
            stream_baselines: Vec::new(),
        }
    }

    /// Append a cell; cells execute and report in push order.
    pub fn push(&mut self, cell: Cell) -> &mut Self {
        self.cells.push(cell);
        self
    }

    /// Declare a device's STREAM DRAM bandwidth so the engine can attach
    /// the §3.3 utilization metric to that device's report cells.
    pub fn stream_baseline(&mut self, device: &str, gbps: f64) -> &mut Self {
        self.stream_baselines.push((device.into(), gbps));
        self
    }

    /// Figure name the run log will carry.
    #[must_use]
    pub fn figure(&self) -> &str {
        &self.figure
    }

    /// The declared cells, in execution/report order.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The declared STREAM baselines, as (device label, GB/s) pairs.
    #[must_use]
    pub fn baselines(&self) -> &[(String, f64)] {
        &self.stream_baselines
    }

    /// Number of cells declared so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Fault-tolerance and resumption policy for one engine run.
///
/// The default is exactly the pre-crash-safety behaviour: no resume, no
/// retries, no deadline, no streaming, no fault injection.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// A partial run log to resume from: cells whose records are
    /// present and resumable (`ok`/`does_not_fit`) are restored instead
    /// of re-simulated; panicked/failed/timed-out records are retried.
    /// The log must be compatible with the matrix (see
    /// [`Engine::run_with`]).
    pub resume: Option<PartialRunLog>,
    /// How many times to re-run a panicking cell before recording it as
    /// `failed` (0 = no retries, panic recorded directly).
    pub retries: u32,
    /// Optional per-cell wall-clock deadline in seconds, checked at
    /// attempt boundaries (a running attempt is never preempted — the
    /// simulator has no cancellation points). An attempt that finishes
    /// past the deadline has its result discarded and the cell recorded
    /// as `timed_out`.
    pub cell_deadline: Option<f64>,
    /// Stream the run log here as cells finish (header first, then one
    /// synced line per cell in index order), so a killed run leaves a
    /// valid truncated log. The path is atomically replaced at the
    /// start of the run; a mid-run write failure disables streaming
    /// with a warning rather than killing the run.
    pub stream_log: Option<PathBuf>,
    /// Fault injection for crash-safety tests: checked once per cell
    /// *attempt* at site `"cell"` with the cell's matrix index, and
    /// once per cache insert at site `"cache"` (between the object
    /// rename and the index append — the widest recovery window).
    pub failpoint: Option<Failpoint>,
    /// Persistent content-addressed result cache (DESIGN.md §12):
    /// consulted before simulating each cell not already restored by
    /// `resume` (hits become [`CellOutcome::Cached`]), populated with
    /// every freshly simulated or resumed `ok`/`does_not_fit` result.
    pub cache: Option<ResultCache>,
}

/// Why [`Engine::run_with`] could not run.
#[derive(Debug)]
pub enum RunError {
    /// The resume log does not describe this matrix (different figure,
    /// cell count, or per-cell identity); resuming over it would
    /// misattribute results.
    Incompatible(String),
    /// Creating the streaming run log failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Incompatible(why) => write!(f, "resume log incompatible: {why}"),
            RunError::Io(e) => write!(f, "streaming run log: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io(e)
    }
}

/// Per-cell record consumer for [`Engine::run_streamed`]: called with
/// `(index, record)` in strict index order as each cell's final record
/// flushes. Must be `Sync` — it is invoked from worker threads.
pub type RecordSink<'a> = dyn Fn(u64, &CellRecord) + Sync + 'a;

/// Executes experiment matrices on a pool of worker threads.
#[derive(Debug, Clone)]
pub struct Engine {
    jobs: u32,
}

impl Engine {
    /// An engine with `jobs` worker threads.
    #[must_use]
    pub fn new(jobs: u32) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Worker threads this engine schedules cells onto.
    #[must_use]
    pub fn jobs(&self) -> u32 {
        self.jobs
    }

    /// Execute every cell of the matrix and return results in cell
    /// order, with speedups and utilizations attached.
    ///
    /// The engine's `jobs` value is one *shared budget* of host worker
    /// threads across both parallel layers: the outer per-cell sharding
    /// leases one slot per worker it keeps busy (at most one per cell),
    /// and inside each cell [`membound_sim::Machine::simulate`] leases
    /// any spare slots to fan the per-core trace replay out. The two
    /// layers therefore never multiply — total concurrent workers stay
    /// bounded by `jobs` — while small matrices on many-core devices
    /// (where the outer layer alone cannot fill the budget) still use
    /// every slot.
    ///
    /// Cells are claimed dynamically by the pool's threads; a panicking
    /// cell becomes [`CellOutcome::Panicked`] without affecting its
    /// neighbours. The simulated outcome of each cell — and hence the
    /// whole result apart from wall times and worker counts — is
    /// independent of `jobs`.
    #[must_use]
    pub fn run(&self, matrix: &ExperimentMatrix) -> RunResults {
        self.run_with(matrix, &RunOptions::default())
            .expect("a run without resume or streaming has no failure path")
    }

    /// [`Engine::run`] with a fault-tolerance policy: resumption from a
    /// partial run log, per-cell retries and deadlines, streaming
    /// telemetry, and fault injection (see [`RunOptions`]).
    ///
    /// When resuming, the log must be *compatible* with the matrix:
    /// same figure name, same cell count, and every restored record's
    /// (panel, device, kernel, variant) identity must match the cell at
    /// its index. The job count may differ — it never affects simulated
    /// results. Restored `ok`/`does_not_fit` cells are not
    /// re-simulated; their digest-bearing telemetry fields are carried
    /// over verbatim, and speedups/utilizations are recomputed from the
    /// restored seconds (bit-exact: JSON round-trips `f64` losslessly),
    /// so a resumed run's final log is byte-identical to an
    /// uninterrupted run's in every digest-bearing field.
    ///
    /// # Errors
    ///
    /// [`RunError::Incompatible`] when the resume log does not describe
    /// this matrix; [`RunError::Io`] when the streaming log cannot be
    /// created. Mid-run streaming failures only warn.
    pub fn run_with(
        &self,
        matrix: &ExperimentMatrix,
        options: &RunOptions,
    ) -> Result<RunResults, RunError> {
        // A one-shot run owns its whole budget. The caller's thread is
        // the first accounted worker (the seat), exactly as a daemon
        // scheduler would seat a job — so the one-shot and served paths
        // run the arithmetic-identical thread count.
        let budget = JobBudget::new(self.jobs);
        let _seat = budget.lease(1);
        self.run_streamed(matrix, options, &budget, None)
    }

    /// [`Engine::run_with`] against an *externally owned* [`JobBudget`]
    /// and an optional per-cell record sink — the entry point a job
    /// scheduler (`membound-serve`) uses to run one job's cell set
    /// while N other jobs share the same budget.
    ///
    /// # Seat convention
    ///
    /// The calling thread must already be accounted for in `budget` —
    /// the caller holds one leased slot (its *seat*) for the duration
    /// of this call. The engine then leases only the *extra* workers it
    /// spawns beyond the calling thread: with a dry budget the run
    /// degrades to fully serial on the caller's thread instead of
    /// failing, and the sum of concurrently running worker threads
    /// across every job sharing the budget never exceeds the budget's
    /// total. Inside each cell, the simulator's per-core fan-out leases
    /// spare slots from the same budget, exactly as in a one-shot run.
    ///
    /// Which job wins a race for spare slots changes wall time only:
    /// cell outcomes are deterministic and slotted by index, so every
    /// digest-bearing field is independent of budget contention (the
    /// serial==parallel property, DESIGN.md §9 — this is why served
    /// runs reproduce the canonical digests byte for byte).
    ///
    /// `sink` is called under the stream lock with each cell's final
    /// record, in strict index order, at the moment the contiguous
    /// prefix reaches it — the same records (and the same single
    /// constructor) the streaming run log writes, so a sink-fed
    /// client sees byte-identical lines. Keep the sink cheap and
    /// non-blocking (hand the record to a channel); it runs on worker
    /// threads mid-run.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_with`].
    pub fn run_streamed(
        &self,
        matrix: &ExperimentMatrix,
        options: &RunOptions,
        budget: &JobBudget,
        sink: Option<&RecordSink<'_>>,
    ) -> Result<RunResults, RunError> {
        let n = matrix.cells.len();
        let failpoint = options.failpoint.as_ref();
        let cache = options.cache.as_ref();
        let mut prefilled: Vec<(usize, CellResult)> = Vec::new();
        if let Some(partial) = &options.resume {
            check_resume_compat(matrix, partial)?;
            for (index, record) in partial.records.iter().enumerate() {
                if let Some(result) = restore_cell(&matrix.cells[index], record) {
                    prefilled.push((index, result));
                }
            }
        }
        let restored = prefilled.len() as u64;

        // One key per cell, derived up front on the main thread (cheap:
        // a short hash) so workers never race on derivation.
        let keys: Vec<Option<CacheKey>> = match cache {
            Some(c) => matrix
                .cells
                .iter()
                .map(|cell| Some(c.key_for(cell)))
                .collect(),
            None => (0..n).map(|_| None).collect(),
        };

        let mut cached = 0u64;
        if let Some(c) = cache {
            // Resumed results are as authoritative as fresh ones:
            // inserting them up front means a cache hit is available
            // from the very next run, even if this one dies later.
            for (index, result) in &prefilled {
                if let Some(key) = &keys[*index] {
                    try_cache_insert(
                        c,
                        key,
                        &matrix.cells[*index],
                        *index,
                        &result.outcome,
                        result.wall_seconds,
                        failpoint,
                    );
                }
            }
            let mut have = vec![false; n];
            for (index, _) in &prefilled {
                have[*index] = true;
            }
            for index in 0..n {
                if have[index] {
                    continue;
                }
                let Some(key) = &keys[index] else { continue };
                let Some(entry) = c.lookup(key) else { continue };
                let Some(outcome) = entry.outcome() else {
                    continue;
                };
                prefilled.push((
                    index,
                    CellResult {
                        cell: matrix.cells[index].clone(),
                        outcome: CellOutcome::Cached(outcome),
                        wall_seconds: entry.wall_seconds,
                        attempts: 1,
                        speedup_vs_naive: None,
                        bandwidth_utilization: None,
                    },
                ));
                cached += 1;
            }
        }

        let writer = match &options.stream_log {
            Some(path) => Some(create_stream_log(
                path,
                &RunHeader::new(&matrix.figure, self.jobs, n as u64),
            )?),
            None => None,
        };

        let state = Mutex::new(StreamState {
            flushed: Vec::with_capacity(n),
            pending: BTreeMap::new(),
            baselines: &matrix.stream_baselines,
            writer,
            sink,
            total: n,
        });
        {
            let mut state = state.lock().expect("stream state poisoned");
            for (index, result) in prefilled {
                state.insert(index, result);
            }
        }

        // Only the cells with no restored result are simulated.
        let missing: Vec<usize> = {
            let state = state.lock().expect("stream state poisoned");
            (0..n).filter(|i| !state.contains(*i)).collect()
        };

        // In-run dedupe: among the cells still to simulate, those whose
        // [`Cell::trace_identity`] matches an earlier cell's replay the
        // byte-identical trace on the identical device model, so only the
        // first of each group (its *representative*) is dispatched to the
        // pool; the rest reuse its outcome afterwards. Grouping follows
        // matrix order, so the choice — and hence every digest-bearing
        // field — is independent of the job count.
        let mut rep_of: Vec<Option<usize>> = vec![None; n];
        {
            let mut seen: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            for &index in &missing {
                // A malformed cell (e.g. a hand-built zero block size)
                // can panic while planning its trace; contain it here so
                // it reaches the pool's per-attempt guard and is recorded
                // as a panicked cell, exactly as without dedupe. It is
                // simply never grouped.
                let identity =
                    catch_unwind(AssertUnwindSafe(|| matrix.cells[index].trace_identity()));
                let Ok(identity) = identity else { continue };
                match seen.entry(identity) {
                    std::collections::hash_map::Entry::Occupied(rep) => {
                        rep_of[index] = Some(*rep.get());
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(index);
                    }
                }
            }
        }
        let unique: Vec<usize> = missing
            .iter()
            .copied()
            .filter(|&i| rep_of[i].is_none())
            .collect();

        // Seat convention: the calling thread is one already-leased
        // worker, so lease only the extras beyond it. On a contended
        // (or dry) shared budget `extra` may be partial or zero — the
        // pool shrinks down to the caller's thread alone, it never
        // oversubscribes.
        let want_extra = (unique.len() as u32).min(self.jobs).max(1) - 1;
        let extra = budget.lease(want_extra);
        let pool = Pool::new(extra.granted() + 1);
        let budget_ref = budget;
        let retries = options.retries;
        let deadline = options.cell_deadline;
        let tasks: Vec<Task<'_, (CellOutcome, f64, u32)>> = unique
            .iter()
            .map(|&index| {
                let cell = &matrix.cells[index];
                let b: Task<'_, (CellOutcome, f64, u32)> = Box::new(move || {
                    execute_cell(cell, index, budget_ref, retries, deadline, failpoint)
                });
                b
            })
            .collect();

        let missing_ref = &unique;
        let state_ref = &state;
        let keys_ref = &keys;
        pool.run_tasks_with(tasks, move |k, result| {
            let index = missing_ref[k];
            let (outcome, wall_seconds, attempts) = match result {
                Ok((outcome, wall, attempts)) => (outcome.clone(), *wall, *attempts),
                // execute_cell contains its own panics; this arm only
                // fires if the containment itself breaks.
                Err(panic) => (CellOutcome::Panicked(panic.message.clone()), 0.0, 1),
            };
            // Persist the fresh result before publishing it. This runs
            // on the worker thread that simulated the cell (the pool's
            // completion hook), so inserts overlap with other cells'
            // simulations; any insert failure (or injected `cache`
            // failpoint panic) degrades to a warning, never a lost run.
            if let (Some(c), Some(key)) = (cache, &keys_ref[index]) {
                try_cache_insert(
                    c,
                    key,
                    &matrix.cells[index],
                    index,
                    &outcome,
                    wall_seconds,
                    failpoint,
                );
            }
            state_ref.lock().expect("stream state poisoned").insert(
                index,
                CellResult {
                    cell: matrix.cells[index].clone(),
                    outcome,
                    wall_seconds,
                    attempts,
                    speedup_vs_naive: None,
                    bandwidth_utilization: None,
                },
            );
        });

        // Publish the deduped cells, in matrix order, now that every
        // representative has a result. Each dupe keeps its own per-cell
        // failpoint site with full retry/deadline semantics (so
        // crash-injection gates can still target it — see
        // `run_attempts`), its own cache key (so warm-cache runs hit it
        // directly), and its own run-log record — built from its own
        // identity fields plus the representative's outcome, which is
        // byte-identical to what simulating it would have produced. A
        // representative that panicked / failed / timed out describes
        // its *run*, not the cell's value, so its dupes simulate for
        // real instead.
        let mut deduped = 0u64;
        for &index in &missing {
            let Some(rep) = rep_of[index] else { continue };
            let reusable = {
                let state = state.lock().expect("stream state poisoned");
                let rep_result = state
                    .get(rep)
                    .expect("representatives complete before their dupes");
                match &rep_result.outcome {
                    CellOutcome::Report(_)
                    | CellOutcome::Gbps(_)
                    | CellOutcome::DoesNotFit
                    | CellOutcome::Restored(_)
                    | CellOutcome::Cached(_) => Some(rep_result.outcome.clone()),
                    CellOutcome::Panicked(_)
                    | CellOutcome::Failed(_)
                    | CellOutcome::TimedOut(_) => None,
                }
            };
            let (outcome, wall_seconds, attempts) = match reusable {
                Some(reuse) => {
                    let result =
                        run_attempts(index, retries, deadline, failpoint, || reuse.clone());
                    if !matches!(
                        result.0,
                        CellOutcome::Panicked(_)
                            | CellOutcome::Failed(_)
                            | CellOutcome::TimedOut(_)
                    ) {
                        deduped += 1;
                    }
                    result
                }
                None => execute_cell(
                    &matrix.cells[index],
                    index,
                    budget,
                    retries,
                    deadline,
                    failpoint,
                ),
            };
            if let (Some(c), Some(key)) = (cache, &keys[index]) {
                try_cache_insert(
                    c,
                    key,
                    &matrix.cells[index],
                    index,
                    &outcome,
                    wall_seconds,
                    failpoint,
                );
            }
            state.lock().expect("stream state poisoned").insert(
                index,
                CellResult {
                    cell: matrix.cells[index].clone(),
                    outcome,
                    wall_seconds,
                    attempts,
                    speedup_vs_naive: None,
                    bandwidth_utilization: None,
                },
            );
        }

        let state = state.into_inner().expect("stream state poisoned");
        debug_assert_eq!(state.flushed.len(), n, "every cell flushed");
        Ok(RunResults {
            figure: matrix.figure.clone(),
            jobs: self.jobs,
            restored,
            cached,
            deduped,
            cells: state.flushed,
        })
    }

    /// Measure the STREAM DRAM (Triad) baseline of each device, in
    /// parallel. Returns `(label, gbps)` pairs in input order, ready for
    /// [`ExperimentMatrix::stream_baseline`].
    ///
    /// A device whose baseline task panics is *dropped from the result*
    /// with a stderr warning rather than reported as `0.0` GB/s — a zero
    /// baseline would silently zero every utilization figure on that
    /// device, which is far harder to notice than a missing bar.
    #[must_use]
    pub fn stream_baselines(&self, devices: &[(String, DeviceSpec)]) -> Vec<(String, f64)> {
        let budget = JobBudget::new(self.jobs);
        let outer = budget.lease((devices.len() as u32).min(self.jobs).max(1));
        let pool = Pool::new(outer.granted().max(1));
        let budget_ref = &budget;
        let tasks: Vec<Task<'_, f64>> = devices
            .iter()
            .map(|(_, spec)| {
                let b: Task<'_, f64> =
                    Box::new(move || experiment::stream_dram_gbps_budgeted(spec, budget_ref));
                b
            })
            .collect();
        pool.run_tasks(tasks)
            .into_iter()
            .zip(devices)
            .filter_map(|(r, (label, _))| match r {
                Ok(gbps) => Some((label.clone(), gbps)),
                Err(panic) => {
                    eprintln!(
                        "warning: STREAM baseline for device {label:?} panicked \
                         ({panic:?}); skipping its bandwidth-utilization metric"
                    );
                    None
                }
            })
            .collect()
    }
}

fn execute(cell: &Cell, budget: &JobBudget) -> CellOutcome {
    match &cell.kind {
        CellKind::Transpose { variant, cfg } => {
            match experiment::simulate_transpose_budgeted(&cell.spec, *variant, *cfg, budget) {
                Some(report) => CellOutcome::Report(Box::new(report)),
                None => CellOutcome::DoesNotFit,
            }
        }
        CellKind::Blur { variant, cfg } => CellOutcome::Report(Box::new(
            experiment::simulate_blur_budgeted(&cell.spec, *variant, *cfg, budget),
        )),
        CellKind::FusedBlur { cfg, threads } => CellOutcome::Report(Box::new(
            experiment::simulate_fused_blur_budgeted(&cell.spec, *cfg, *threads, budget),
        )),
        CellKind::Stream { op, level } => CellOutcome::Gbps(experiment::simulate_stream_budgeted(
            &cell.spec, *op, *level, budget,
        )),
        CellKind::Gbmv { variant, cfg } => {
            match experiment::simulate_gbmv_budgeted(&cell.spec, *variant, *cfg, budget) {
                Some(report) => CellOutcome::Report(Box::new(report)),
                None => CellOutcome::DoesNotFit,
            }
        }
    }
}

/// Run one cell under the retry/deadline policy. Returns the outcome,
/// the cumulative wall seconds across attempts, and the attempt count.
///
/// Each attempt is wrapped in its own `catch_unwind` (so an injected or
/// organic panic is retryable), and the optional failpoint is evaluated
/// *inside* the guard — an injected panic takes exactly the path an
/// organic one would. The deadline is checked after each attempt: the
/// simulator has no cancellation points, so a late attempt cannot be
/// preempted, only discarded.
fn execute_cell(
    cell: &Cell,
    index: usize,
    budget: &JobBudget,
    retries: u32,
    deadline: Option<f64>,
    failpoint: Option<&Failpoint>,
) -> (CellOutcome, f64, u32) {
    run_attempts(index, retries, deadline, failpoint, || {
        execute(cell, budget)
    })
}

/// The retry/deadline/failpoint loop of [`execute_cell`], generic over
/// how the outcome is produced. Deduped cells reuse their
/// representative's outcome as the `work` closure, so an injected
/// `cell:*@N` failpoint aimed at a duplicate cell sees exactly the
/// attempt semantics a simulated cell would: the failpoint fires inside
/// the per-attempt panic guard, panics consume retries, and a delay
/// counts against the cell deadline.
fn run_attempts<F: FnMut() -> CellOutcome>(
    index: usize,
    retries: u32,
    deadline: Option<f64>,
    failpoint: Option<&Failpoint>,
    mut work: F,
) -> (CellOutcome, f64, u32) {
    let start = Instant::now();
    let max_attempts = retries.saturating_add(1);
    let mut last_panic = String::new();
    for attempt in 1..=max_attempts {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(fp) = failpoint {
                fp.check("cell", index as u64);
            }
            work()
        }));
        let elapsed = start.elapsed().as_secs_f64();
        let overran = deadline.is_some_and(|limit| elapsed > limit);
        match result {
            Ok(outcome) => {
                if overran {
                    let why = format!(
                        "exceeded the {:.3}s cell deadline after {elapsed:.3}s \
                         (attempt {attempt}); result discarded",
                        deadline.unwrap_or(0.0)
                    );
                    return (CellOutcome::TimedOut(why), elapsed, attempt);
                }
                return (outcome, elapsed, attempt);
            }
            Err(payload) => {
                last_panic = membound_parallel::panic_message(payload);
                if overran {
                    let why = format!(
                        "exceeded the {:.3}s cell deadline after {elapsed:.3}s \
                         (attempt {attempt} panicked: {last_panic})",
                        deadline.unwrap_or(0.0)
                    );
                    return (CellOutcome::TimedOut(why), elapsed, attempt);
                }
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let outcome = if retries == 0 {
        CellOutcome::Panicked(last_panic)
    } else {
        CellOutcome::Failed(format!("{last_panic} (after {max_attempts} attempts)"))
    };
    (outcome, wall, max_attempts)
}

/// Persist one cell's outcome in the result cache, degrading every
/// failure to a stderr warning: a cache that cannot be written must
/// never take down a run that already has its result in hand. The
/// `catch_unwind` matters because this runs inside the pool's
/// completion hook, where a panic is *not* contained (see
/// [`membound_parallel::Pool::run_tasks_with`]) — it also turns an
/// injected `cache:panic@N` failpoint into exactly the recoverable
/// partial state a real crash would leave.
fn try_cache_insert(
    cache: &ResultCache,
    key: &CacheKey,
    cell: &Cell,
    index: usize,
    outcome: &CellOutcome,
    wall_seconds: f64,
    failpoint: Option<&Failpoint>,
) {
    let Some(entry) = CacheEntry::capture(cache.fingerprint(), key, cell, outcome, wall_seconds)
    else {
        return;
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        cache.insert(key, &entry, || {
            if let Some(fp) = failpoint {
                fp.check("cache", index as u64);
            }
        })
    }));
    match attempt {
        Ok(Ok(())) => {}
        Ok(Err(e)) => eprintln!(
            "warning: result cache insert for cell {index} failed ({e}); continuing uncached"
        ),
        Err(payload) => eprintln!(
            "warning: result cache insert for cell {index} panicked ({}); continuing uncached",
            membound_parallel::panic_message(payload)
        ),
    }
}

/// Simulated seconds of a report-bearing cell, fresh or restored — the
/// quantity the ladder-speedup and utilization metrics are computed
/// from. Restored seconds are bit-exact copies of the original run's
/// (JSON round-trips `f64` losslessly), so every derived metric is too.
fn sim_seconds(r: &CellResult) -> Option<f64> {
    r.sim_summary().map(|s| s.seconds)
}

/// Speedup of cell `m` over its ladder baseline: within the run of
/// consecutive cells sharing (panel, device, kernel) that contains `m`,
/// the first report-bearing cell is the baseline. Only inspects indices
/// `<= m` — the baseline of a ladder always precedes (or is) the cell —
/// so the streaming writer can compute it the moment the contiguous
/// prefix reaches `m`, and the value is identical to a whole-run pass.
fn speedup_for(results: &[CellResult], m: usize) -> Option<f64> {
    let seconds = sim_seconds(&results[m])?;
    let key = results[m].cell.ladder_key();
    let mut start = m;
    while start > 0 && results[start - 1].cell.ladder_key() == key {
        start -= 1;
    }
    let base = results[start..=m].iter().find_map(sim_seconds)?;
    Some(speedup(base, seconds))
}

/// The §3.3 utilization metric for one cell, when its kind has a
/// nominal byte count and its device a declared STREAM baseline.
/// Restored cells recompute through the same formula as
/// [`SimReport::bandwidth_utilization`] on bit-identical seconds, so
/// the value matches the original run's exactly.
fn utilization_for(r: &CellResult, baselines: &[(String, f64)]) -> Option<f64> {
    let nominal = r.cell.kind.nominal_bytes()?;
    let &(_, gbps) = baselines.iter().find(|(d, _)| *d == r.cell.device)?;
    match &r.outcome {
        CellOutcome::Report(report) => Some(report.bandwidth_utilization(nominal, gbps)),
        CellOutcome::Restored(rec) | CellOutcome::Cached(CachedOutcome::Sim(rec)) => {
            // Mirrors SimReport::{achieved_gbps, bandwidth_utilization}
            // (crates/sim/src/machine.rs) on the restored seconds; a
            // unit test pins the two formulas together.
            if rec.seconds <= 0.0 || gbps <= 0.0 {
                Some(0.0)
            } else {
                Some(nominal as f64 / rec.seconds / 1e9 / gbps)
            }
        }
        _ => None,
    }
}

/// Accumulates cell results in matrix order and streams each one to the
/// run log the moment the contiguous prefix reaches it.
///
/// Workers complete cells out of order; records in a run log must be in
/// index order (the digests are order-sensitive). Out-of-order arrivals
/// wait in `pending`; every time the contiguous prefix grows, the newly
/// contiguous cells get their ladder speedup and utilization attached
/// (both only need indices `<=` their own) and their record line
/// appended and synced. When the run finishes, `flushed` *is* the final
/// result vector — the streaming and terminal paths cannot disagree
/// because they are the same path.
struct StreamState<'m> {
    flushed: Vec<CellResult>,
    pending: BTreeMap<usize, CellResult>,
    baselines: &'m [(String, f64)],
    writer: Option<StreamingRunLog>,
    /// In-process record consumer ([`Engine::run_streamed`]): called in
    /// index order at flush time, fed the same records the writer
    /// appends.
    sink: Option<&'m RecordSink<'m>>,
    total: usize,
}

impl StreamState<'_> {
    fn contains(&self, index: usize) -> bool {
        index < self.flushed.len() || self.pending.contains_key(&index)
    }

    /// The result published for `index`, flushed or still pending.
    fn get(&self, index: usize) -> Option<&CellResult> {
        if index < self.flushed.len() {
            Some(&self.flushed[index])
        } else {
            self.pending.get(&index)
        }
    }

    fn insert(&mut self, index: usize, result: CellResult) {
        debug_assert!(index < self.total && !self.contains(index));
        self.pending.insert(index, result);
        while let Some(result) = self.pending.remove(&self.flushed.len()) {
            let m = self.flushed.len();
            self.flushed.push(result);
            self.flushed[m].speedup_vs_naive = speedup_for(&self.flushed, m);
            self.flushed[m].bandwidth_utilization =
                utilization_for(&self.flushed[m], self.baselines);
            if self.writer.is_some() || self.sink.is_some() {
                let record = cell_record(m as u64, &self.flushed[m]);
                if let Some(writer) = &mut self.writer {
                    if let Err(e) = writer.append_record(&record) {
                        eprintln!(
                            "warning: streaming run log failed at cell {m} ({e}); \
                             disabling streaming for the rest of the run"
                        );
                        self.writer = None;
                    }
                }
                if let Some(sink) = self.sink {
                    sink(m as u64, &record);
                }
            }
        }
    }
}

/// Create the streaming run log (parent directories included),
/// atomically replacing whatever was at the path — which may be the
/// very log being resumed from: its records are already parsed into
/// memory and re-stream immediately, so no window exists where the old
/// data is the only copy.
fn create_stream_log(path: &Path, header: &RunHeader) -> std::io::Result<StreamingRunLog> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    StreamingRunLog::create(path, header)
}

/// Rebuild a [`CellResult`] from a restored record, or `None` when the
/// record's status means the cell must be re-simulated
/// (panicked/failed/timed-out — resume is the second chance).
fn restore_cell(cell: &Cell, record: &CellRecord) -> Option<CellResult> {
    let outcome = match record.status.as_str() {
        telemetry::status::OK => {
            if let Some(sim) = &record.sim {
                CellOutcome::Restored(Box::new(sim.clone()))
            } else if let Some(gbps) = record.gbps {
                CellOutcome::Gbps(gbps)
            } else {
                // An ok record with no result would not validate; run
                // the cell rather than trust it.
                return None;
            }
        }
        telemetry::status::DOES_NOT_FIT => CellOutcome::DoesNotFit,
        _ => return None,
    };
    Some(CellResult {
        cell: cell.clone(),
        outcome,
        wall_seconds: record.wall_seconds,
        attempts: record.attempts.unwrap_or(1),
        speedup_vs_naive: None,
        bandwidth_utilization: None,
    })
}

/// Check that a partial log describes `matrix` before resuming over it.
fn check_resume_compat(matrix: &ExperimentMatrix, partial: &PartialRunLog) -> Result<(), RunError> {
    // parse_partial_run_log already enforces this range, but a
    // PartialRunLog can be constructed by hand: the engine must not
    // depend on how the value got here. Restoring records written under
    // a future schema would mean trusting fields this release cannot
    // interpret.
    let supported = telemetry::MIN_SCHEMA_VERSION..=telemetry::SCHEMA_VERSION;
    if !supported.contains(&partial.header.schema_version) {
        return Err(RunError::Incompatible(format!(
            "log schema version {} unsupported (this engine speaks {}..={})",
            partial.header.schema_version,
            telemetry::MIN_SCHEMA_VERSION,
            telemetry::SCHEMA_VERSION
        )));
    }
    if partial.header.figure != matrix.figure {
        return Err(RunError::Incompatible(format!(
            "log is for figure {:?}, matrix is {:?}",
            partial.header.figure, matrix.figure
        )));
    }
    if partial.header.cells != matrix.cells.len() as u64 {
        return Err(RunError::Incompatible(format!(
            "log plans {} cells, matrix has {}",
            partial.header.cells,
            matrix.cells.len()
        )));
    }
    for (index, record) in partial.records.iter().enumerate() {
        let cell = &matrix.cells[index];
        let identity = (
            record.panel.as_str(),
            record.device.as_str(),
            record.kernel.as_str(),
            record.variant.as_str(),
        );
        let expected = (
            cell.panel.as_str(),
            cell.device.as_str(),
            cell.kind.kernel(),
            cell.variant.as_str(),
        );
        if identity != expected {
            return Err(RunError::Incompatible(format!(
                "cell {index} is {identity:?} in the log but {expected:?} in the matrix"
            )));
        }
    }
    Ok(())
}

/// Flatten one cell result into its telemetry record. This single
/// constructor serves both the streaming writer (as each cell flushes)
/// and the terminal [`RunResults::telemetry`] render, so the two logs
/// are byte-identical line for line (the header timestamp aside).
fn cell_record(index: u64, r: &CellResult) -> CellRecord {
    let (status, sim, gbps, error) = match &r.outcome {
        CellOutcome::Report(report) => (
            telemetry::status::OK,
            Some(SimRecord::from_report(report)),
            None,
            None,
        ),
        CellOutcome::Restored(record) => (
            telemetry::status::OK,
            Some(record.as_ref().clone()),
            None,
            None,
        ),
        CellOutcome::Cached(cached) => match cached {
            CachedOutcome::Sim(record) => (
                telemetry::status::OK,
                Some(record.as_ref().clone()),
                None,
                None,
            ),
            CachedOutcome::Gbps(g) => (telemetry::status::OK, None, Some(*g), None),
            CachedOutcome::DoesNotFit => (telemetry::status::DOES_NOT_FIT, None, None, None),
        },
        CellOutcome::Gbps(g) => (telemetry::status::OK, None, Some(*g), None),
        CellOutcome::DoesNotFit => (telemetry::status::DOES_NOT_FIT, None, None, None),
        CellOutcome::Panicked(msg) => (telemetry::status::PANICKED, None, None, Some(msg.clone())),
        CellOutcome::Failed(msg) => (telemetry::status::FAILED, None, None, Some(msg.clone())),
        CellOutcome::TimedOut(msg) => (telemetry::status::TIMED_OUT, None, None, Some(msg.clone())),
    };
    let provenance = match &r.outcome {
        CellOutcome::Restored(_) => Some(telemetry::provenance::RESUME.to_string()),
        CellOutcome::Cached(_) => Some(telemetry::provenance::CACHE.to_string()),
        _ => None,
    };
    CellRecord {
        kind: "cell".into(),
        index,
        panel: r.cell.panel.clone(),
        device: r.cell.device.clone(),
        kernel: r.cell.kind.kernel().into(),
        variant: r.cell.variant.clone(),
        status: status.into(),
        attempts: Some(r.attempts),
        wall_seconds: r.wall_seconds,
        sim,
        gbps,
        speedup_vs_naive: r.speedup_vs_naive,
        bandwidth_utilization: r.bandwidth_utilization,
        error,
        provenance,
    }
}

/// The outcome of one engine run, in matrix cell order.
#[derive(Debug, Clone)]
pub struct RunResults {
    /// Figure name of the matrix.
    pub figure: String,
    /// Worker threads the run used.
    pub jobs: u32,
    /// Cells restored from a `--resume` log instead of re-simulated.
    pub restored: u64,
    /// Cells restored from the persistent result cache instead of
    /// simulated (`--cache-dir`, DESIGN.md §12).
    pub cached: u64,
    /// Cells that reused an identical cell's fresh result instead of
    /// re-simulating it (in-run dedupe, [`Cell::trace_identity`]).
    pub deduped: u64,
    /// Per-cell results, in declaration order.
    pub cells: Vec<CellResult>,
}

impl RunResults {
    /// Order-sensitive digest over every report cell's
    /// [`SimReport::stats_digest`] (restored and cached cells
    /// contribute their carried-over digest): two runs of the same
    /// matrix must produce the same value regardless of their job
    /// counts or of which cells were resumed or served from the result
    /// cache.
    #[must_use]
    pub fn combined_digest(&self) -> String {
        let digests: Vec<String> = self
            .cells
            .iter()
            .filter_map(|r| match &r.outcome {
                CellOutcome::Report(rep) => Some(format!("{:016x}", rep.stats_digest())),
                CellOutcome::Restored(rec) | CellOutcome::Cached(CachedOutcome::Sim(rec)) => {
                    Some(rec.stats_digest.clone())
                }
                _ => None,
            })
            .collect();
        telemetry::combine_digests(digests.iter().map(String::as_str))
    }

    /// The telemetry records of this run (header first).
    #[must_use]
    pub fn telemetry(&self) -> (RunHeader, Vec<CellRecord>) {
        let header = RunHeader::new(&self.figure, self.jobs, self.cells.len() as u64);
        let records = self
            .cells
            .iter()
            .enumerate()
            .map(|(index, r)| cell_record(index as u64, r))
            .collect();
        (header, records)
    }

    /// Render the JSONL run log.
    #[must_use]
    pub fn render_run_log(&self) -> String {
        let (header, records) = self.telemetry();
        telemetry::render_run_log(&header, &records)
    }

    /// Write the JSONL run log to `path`, creating parent directories.
    /// The write is atomic (temp file in the same directory + rename),
    /// so a crash or full disk mid-write can never leave a half-written
    /// log at the destination.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_run_log(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        telemetry::write_text_atomic(path, &self.render_run_log())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_sim::Device;

    fn small_matrix() -> ExperimentMatrix {
        let mut matrix = ExperimentMatrix::new("test_matrix");
        let spec = Device::MangoPiMqPro.spec();
        let cfg = TransposeConfig::with_block(128, 16);
        for variant in TransposeVariant::all() {
            matrix.push(Cell::transpose(
                "128",
                Device::MangoPiMqPro.label(),
                &spec,
                variant,
                cfg,
            ));
        }
        matrix
    }

    #[test]
    fn engine_runs_a_ladder_and_attaches_speedups() {
        let results = Engine::new(2).run(&small_matrix());
        assert_eq!(results.cells.len(), TransposeVariant::all().len());
        assert_eq!(results.cells[0].speedup_vs_naive, Some(1.0));
        for r in &results.cells {
            assert!(r.report().is_some(), "{}: {:?}", r.cell.variant, r.outcome);
            assert!(r.speedup_vs_naive.unwrap() > 0.0);
        }
    }

    #[test]
    fn does_not_fit_cells_are_reported_not_dropped() {
        let mut matrix = ExperimentMatrix::new("test_overflow");
        let spec = Device::MangoPiMqPro.spec();
        matrix.push(Cell::transpose(
            "16384",
            Device::MangoPiMqPro.label(),
            &spec,
            TransposeVariant::Naive,
            TransposeConfig::new(16384),
        ));
        let results = Engine::new(1).run(&matrix);
        assert_eq!(results.cells[0].outcome, CellOutcome::DoesNotFit);
        assert_eq!(results.cells[0].speedup_vs_naive, None);
    }

    #[test]
    fn run_log_of_a_real_run_validates() {
        let results = Engine::new(2).run(&small_matrix());
        let text = results.render_run_log();
        let summary = crate::telemetry::validate_run_log(&text).expect("valid");
        assert_eq!(summary.cells, results.cells.len() as u64);
        assert_eq!(summary.ok_cells, summary.cells);
        assert_eq!(summary.combined_digest, results.combined_digest());
    }

    #[test]
    fn utilization_attaches_when_a_baseline_is_declared() {
        let mut matrix = small_matrix();
        matrix.stream_baseline(Device::MangoPiMqPro.label(), 2.0);
        let results = Engine::new(2).run(&matrix);
        for r in &results.cells {
            let util = r.bandwidth_utilization.expect("baseline declared");
            assert!(util > 0.0);
        }
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }
}
