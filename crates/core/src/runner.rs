//! The parallel experiment engine.
//!
//! Every figure of the reproduction is a matrix of *cells* — one kernel
//! variant on one device at one workload — and every cell is an
//! independent, deterministic simulation. The figure binaries used to
//! walk that matrix serially; this module shards it across
//! [`membound_parallel::Pool::run_tasks`] instead:
//!
//! * [`ExperimentMatrix`] declares the cells (and optional per-device
//!   STREAM baselines for the §3.3 utilization metric);
//! * [`Engine`] executes them on `jobs` worker threads — from `--jobs`,
//!   the `MEMBOUND_JOBS` environment variable, or the host core count
//!   (see [`resolve_jobs`]) — catching per-cell panics so one bad cell
//!   cannot take down a whole figure run;
//! * [`RunResults`] holds the outcomes *in cell order*, attaches
//!   speedup-vs-baseline per ladder, and renders the versioned JSONL
//!   run log of [`crate::telemetry`].
//!
//! The `jobs` value is one shared [`JobBudget`] across *two* nested
//! parallel layers: the engine's per-cell sharding leases one slot per
//! outer worker, and each cell's [`membound_sim::Machine`] leases the
//! spare slots to replay its simulated cores concurrently. `--jobs N`
//! therefore bounds the total number of concurrently running host
//! threads instead of multiplying into `cells × cores` (see DESIGN.md
//! §9).
//!
//! Parallel runs are bit-identical to serial ones: the simulator is
//! deterministic and results are slotted by cell index (and per-core
//! outcomes by tid), so the per-cell [`SimReport`]s (and therefore
//! their [`stats_digest`](SimReport::stats_digest)s and the run log's
//! simulated fields) do not depend on the job count. Only host wall
//! times and worker counts differ.

use crate::blur::{BlurConfig, BlurVariant};
use crate::experiment;
use crate::metrics::speedup;
use crate::stream::StreamOp;
use crate::telemetry::{self, CellRecord, RunHeader, SimRecord};
use crate::transpose::{TransposeConfig, TransposeVariant};
use membound_parallel::{JobBudget, Pool, Task};
use membound_sim::{DeviceSpec, SimReport};
use std::path::Path;
use std::time::Instant;

/// How many worker threads to use, resolved from (in precedence order)
/// an explicit `--jobs` value, the `MEMBOUND_JOBS` environment variable,
/// and the host's available parallelism.
#[must_use]
pub fn resolve_jobs(cli: Option<u32>) -> u32 {
    if let Some(n) = cli {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("MEMBOUND_JOBS") {
        if let Ok(n) = v.trim().parse::<u32>() {
            return n.max(1);
        }
        eprintln!(
            "warning: ignoring unparseable MEMBOUND_JOBS value {:?}; \
             falling back to available parallelism",
            v
        );
    }
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
}

/// What one cell simulates.
#[derive(Debug, Clone)]
pub enum CellKind {
    /// One transpose variant ([`experiment::simulate_transpose`]).
    Transpose {
        /// Ladder variant.
        variant: TransposeVariant,
        /// Matrix workload.
        cfg: TransposeConfig,
    },
    /// One blur variant ([`experiment::simulate_blur`]).
    Blur {
        /// Ladder variant.
        variant: BlurVariant,
        /// Image workload.
        cfg: BlurConfig,
    },
    /// The fused-blur extension ([`experiment::simulate_fused_blur`]).
    FusedBlur {
        /// Image workload.
        cfg: BlurConfig,
        /// Simulated threads (clamped to the device's cores).
        threads: u32,
    },
    /// One STREAM measurement ([`experiment::simulate_stream`]).
    Stream {
        /// STREAM operation.
        op: StreamOp,
        /// Cache level index, or `None` for DRAM.
        level: Option<usize>,
    },
}

impl CellKind {
    /// Bytes the kernel must move between DRAM and the CPU, when the
    /// §3.3 utilization metric applies to this kind of cell.
    #[must_use]
    pub fn nominal_bytes(&self) -> Option<u64> {
        match self {
            CellKind::Transpose { cfg, .. } => Some(cfg.nominal_bytes()),
            CellKind::Blur { cfg, .. } | CellKind::FusedBlur { cfg, .. } => {
                Some(cfg.nominal_bytes())
            }
            CellKind::Stream { .. } => None,
        }
    }

    fn kernel(&self) -> &'static str {
        match self {
            CellKind::Transpose { .. } => "transpose",
            CellKind::Blur { .. } => "blur",
            CellKind::FusedBlur { .. } => "fused_blur",
            CellKind::Stream { .. } => "stream",
        }
    }
}

/// One cell of the experiment matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload panel label (e.g. the matrix size, `"2048"`).
    pub panel: String,
    /// Device label (for grouping and the run log).
    pub device: String,
    /// Variant label within the ladder.
    pub variant: String,
    /// Device model to simulate on.
    pub spec: DeviceSpec,
    /// What to simulate.
    pub kind: CellKind,
}

impl Cell {
    /// A transpose cell.
    #[must_use]
    pub fn transpose(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        variant: TransposeVariant,
        cfg: TransposeConfig,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: variant.label().into(),
            spec: spec.clone(),
            kind: CellKind::Transpose { variant, cfg },
        }
    }

    /// A blur cell.
    #[must_use]
    pub fn blur(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        variant: BlurVariant,
        cfg: BlurConfig,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: variant.label().into(),
            spec: spec.clone(),
            kind: CellKind::Blur { variant, cfg },
        }
    }

    /// A fused-blur cell.
    #[must_use]
    pub fn fused_blur(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        cfg: BlurConfig,
        threads: u32,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: "Fused".into(),
            spec: spec.clone(),
            kind: CellKind::FusedBlur { cfg, threads },
        }
    }

    /// A STREAM cell (`level` is a cache index, `None` for DRAM).
    #[must_use]
    pub fn stream(
        panel: impl Into<String>,
        device: &str,
        spec: &DeviceSpec,
        op: StreamOp,
        level: Option<usize>,
    ) -> Self {
        Self {
            panel: panel.into(),
            device: device.into(),
            variant: op.label().into(),
            spec: spec.clone(),
            kind: CellKind::Stream { op, level },
        }
    }

    /// Key of the speedup ladder this cell belongs to.
    fn ladder_key(&self) -> (String, String, &'static str) {
        (self.panel.clone(), self.device.clone(), self.kind.kernel())
    }
}

/// What one executed cell produced.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// A full simulator report (boxed: it dwarfs the other variants).
    Report(Box<SimReport>),
    /// Measured bandwidth in GB/s (STREAM cells).
    Gbps(f64),
    /// The workload exceeds the device's memory.
    DoesNotFit,
    /// The cell's simulation panicked; contains the message.
    Panicked(String),
}

/// One executed cell, in matrix order.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// What it produced.
    pub outcome: CellOutcome,
    /// Host wall-clock seconds the simulation took (nondeterministic).
    pub wall_seconds: f64,
    /// Speedup over the ladder's first successful cell (1.0 for the
    /// baseline itself); `None` when the ladder has no baseline or the
    /// cell produced no report.
    pub speedup_vs_naive: Option<f64>,
    /// The §3.3 utilization metric, when a STREAM baseline was declared
    /// for the device.
    pub bandwidth_utilization: Option<f64>,
}

impl CellResult {
    /// The simulator report, when the cell produced one.
    #[must_use]
    pub fn report(&self) -> Option<&SimReport> {
        match &self.outcome {
            CellOutcome::Report(r) => Some(r.as_ref()),
            _ => None,
        }
    }
}

/// A declared set of cells to execute.
#[derive(Debug, Clone)]
pub struct ExperimentMatrix {
    figure: String,
    cells: Vec<Cell>,
    stream_baselines: Vec<(String, f64)>,
}

impl ExperimentMatrix {
    /// An empty matrix for `figure` (the run log's figure name).
    #[must_use]
    pub fn new(figure: impl Into<String>) -> Self {
        Self {
            figure: figure.into(),
            cells: Vec::new(),
            stream_baselines: Vec::new(),
        }
    }

    /// Append a cell; cells execute and report in push order.
    pub fn push(&mut self, cell: Cell) -> &mut Self {
        self.cells.push(cell);
        self
    }

    /// Declare a device's STREAM DRAM bandwidth so the engine can attach
    /// the §3.3 utilization metric to that device's report cells.
    pub fn stream_baseline(&mut self, device: &str, gbps: f64) -> &mut Self {
        self.stream_baselines.push((device.into(), gbps));
        self
    }

    /// Number of cells declared so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Executes experiment matrices on a pool of worker threads.
#[derive(Debug, Clone)]
pub struct Engine {
    jobs: u32,
}

impl Engine {
    /// An engine with `jobs` worker threads.
    #[must_use]
    pub fn new(jobs: u32) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Worker threads this engine schedules cells onto.
    #[must_use]
    pub fn jobs(&self) -> u32 {
        self.jobs
    }

    /// Execute every cell of the matrix and return results in cell
    /// order, with speedups and utilizations attached.
    ///
    /// The engine's `jobs` value is one *shared budget* of host worker
    /// threads across both parallel layers: the outer per-cell sharding
    /// leases one slot per worker it keeps busy (at most one per cell),
    /// and inside each cell [`membound_sim::Machine::simulate`] leases
    /// any spare slots to fan the per-core trace replay out. The two
    /// layers therefore never multiply — total concurrent workers stay
    /// bounded by `jobs` — while small matrices on many-core devices
    /// (where the outer layer alone cannot fill the budget) still use
    /// every slot.
    ///
    /// Cells are claimed dynamically by the pool's threads; a panicking
    /// cell becomes [`CellOutcome::Panicked`] without affecting its
    /// neighbours. The simulated outcome of each cell — and hence the
    /// whole result apart from wall times and worker counts — is
    /// independent of `jobs`.
    #[must_use]
    pub fn run(&self, matrix: &ExperimentMatrix) -> RunResults {
        let budget = JobBudget::new(self.jobs);
        let outer = budget.lease((matrix.cells.len() as u32).min(self.jobs).max(1));
        let pool = Pool::new(outer.granted().max(1));
        let budget_ref = &budget;
        let tasks: Vec<Task<'_, (CellOutcome, f64)>> = matrix
            .cells
            .iter()
            .map(|cell| {
                let b: Task<'_, (CellOutcome, f64)> = Box::new(move || {
                    let start = Instant::now();
                    let outcome = execute(cell, budget_ref);
                    (outcome, start.elapsed().as_secs_f64())
                });
                b
            })
            .collect();

        let mut results: Vec<CellResult> = pool
            .run_tasks(tasks)
            .into_iter()
            .zip(matrix.cells.iter())
            .map(|(result, cell)| {
                let (outcome, wall_seconds) = match result {
                    Ok((outcome, wall)) => (outcome, wall),
                    Err(panic) => (CellOutcome::Panicked(panic.message), 0.0),
                };
                CellResult {
                    cell: cell.clone(),
                    outcome,
                    wall_seconds,
                    speedup_vs_naive: None,
                    bandwidth_utilization: None,
                }
            })
            .collect();

        attach_speedups(&mut results);
        attach_utilization(&mut results, &matrix.stream_baselines);

        RunResults {
            figure: matrix.figure.clone(),
            jobs: self.jobs,
            cells: results,
        }
    }

    /// Measure the STREAM DRAM (Triad) baseline of each device, in
    /// parallel. Returns `(label, gbps)` pairs in input order, ready for
    /// [`ExperimentMatrix::stream_baseline`].
    ///
    /// A device whose baseline task panics is *dropped from the result*
    /// with a stderr warning rather than reported as `0.0` GB/s — a zero
    /// baseline would silently zero every utilization figure on that
    /// device, which is far harder to notice than a missing bar.
    #[must_use]
    pub fn stream_baselines(&self, devices: &[(String, DeviceSpec)]) -> Vec<(String, f64)> {
        let budget = JobBudget::new(self.jobs);
        let outer = budget.lease((devices.len() as u32).min(self.jobs).max(1));
        let pool = Pool::new(outer.granted().max(1));
        let budget_ref = &budget;
        let tasks: Vec<Task<'_, f64>> = devices
            .iter()
            .map(|(_, spec)| {
                let b: Task<'_, f64> =
                    Box::new(move || experiment::stream_dram_gbps_budgeted(spec, budget_ref));
                b
            })
            .collect();
        pool.run_tasks(tasks)
            .into_iter()
            .zip(devices)
            .filter_map(|(r, (label, _))| match r {
                Ok(gbps) => Some((label.clone(), gbps)),
                Err(panic) => {
                    eprintln!(
                        "warning: STREAM baseline for device {label:?} panicked \
                         ({panic:?}); skipping its bandwidth-utilization metric"
                    );
                    None
                }
            })
            .collect()
    }
}

fn execute(cell: &Cell, budget: &JobBudget) -> CellOutcome {
    match &cell.kind {
        CellKind::Transpose { variant, cfg } => {
            match experiment::simulate_transpose_budgeted(&cell.spec, *variant, *cfg, budget) {
                Some(report) => CellOutcome::Report(Box::new(report)),
                None => CellOutcome::DoesNotFit,
            }
        }
        CellKind::Blur { variant, cfg } => CellOutcome::Report(Box::new(
            experiment::simulate_blur_budgeted(&cell.spec, *variant, *cfg, budget),
        )),
        CellKind::FusedBlur { cfg, threads } => CellOutcome::Report(Box::new(
            experiment::simulate_fused_blur_budgeted(&cell.spec, *cfg, *threads, budget),
        )),
        CellKind::Stream { op, level } => CellOutcome::Gbps(experiment::simulate_stream_budgeted(
            &cell.spec, *op, *level, budget,
        )),
    }
}

/// For each run of consecutive cells sharing (panel, device, kernel),
/// the first cell with a report is the baseline; every report cell of
/// the run gets `baseline.seconds / cell.seconds`.
fn attach_speedups(results: &mut [CellResult]) {
    let mut i = 0;
    while i < results.len() {
        let key = results[i].cell.ladder_key();
        let mut j = i;
        while j < results.len() && results[j].cell.ladder_key() == key {
            j += 1;
        }
        let baseline = results[i..j]
            .iter()
            .find_map(|r| r.report().map(|rep| rep.seconds));
        if let Some(base) = baseline {
            for r in &mut results[i..j] {
                if let Some(rep_seconds) = r.report().map(|rep| rep.seconds) {
                    r.speedup_vs_naive = Some(speedup(base, rep_seconds));
                }
            }
        }
        i = j;
    }
}

fn attach_utilization(results: &mut [CellResult], baselines: &[(String, f64)]) {
    if baselines.is_empty() {
        return;
    }
    for r in results {
        let Some(nominal) = r.cell.kind.nominal_bytes() else {
            continue;
        };
        let Some(&(_, gbps)) = baselines.iter().find(|(d, _)| *d == r.cell.device) else {
            continue;
        };
        if let CellOutcome::Report(report) = &r.outcome {
            r.bandwidth_utilization = Some(report.bandwidth_utilization(nominal, gbps));
        }
    }
}

/// The outcome of one engine run, in matrix cell order.
#[derive(Debug, Clone)]
pub struct RunResults {
    /// Figure name of the matrix.
    pub figure: String,
    /// Worker threads the run used.
    pub jobs: u32,
    /// Per-cell results, in declaration order.
    pub cells: Vec<CellResult>,
}

impl RunResults {
    /// Order-sensitive digest over every report cell's
    /// [`SimReport::stats_digest`]: two runs of the same matrix must
    /// produce the same value regardless of their job counts.
    #[must_use]
    pub fn combined_digest(&self) -> String {
        let digests: Vec<String> = self
            .cells
            .iter()
            .filter_map(|r| r.report().map(|rep| format!("{:016x}", rep.stats_digest())))
            .collect();
        telemetry::combine_digests(digests.iter().map(String::as_str))
    }

    /// The telemetry records of this run (header first).
    #[must_use]
    pub fn telemetry(&self) -> (RunHeader, Vec<CellRecord>) {
        let header = RunHeader::new(&self.figure, self.jobs, self.cells.len() as u64);
        let records = self
            .cells
            .iter()
            .enumerate()
            .map(|(index, r)| {
                let (status, sim, gbps, error) = match &r.outcome {
                    CellOutcome::Report(report) => (
                        telemetry::status::OK,
                        Some(SimRecord::from_report(report)),
                        None,
                        None,
                    ),
                    CellOutcome::Gbps(g) => (telemetry::status::OK, None, Some(*g), None),
                    CellOutcome::DoesNotFit => (telemetry::status::DOES_NOT_FIT, None, None, None),
                    CellOutcome::Panicked(msg) => {
                        (telemetry::status::PANICKED, None, None, Some(msg.clone()))
                    }
                };
                CellRecord {
                    kind: "cell".into(),
                    index: index as u64,
                    panel: r.cell.panel.clone(),
                    device: r.cell.device.clone(),
                    kernel: r.cell.kind.kernel().into(),
                    variant: r.cell.variant.clone(),
                    status: status.into(),
                    wall_seconds: r.wall_seconds,
                    sim,
                    gbps,
                    speedup_vs_naive: r.speedup_vs_naive,
                    bandwidth_utilization: r.bandwidth_utilization,
                    error,
                }
            })
            .collect();
        (header, records)
    }

    /// Render the JSONL run log.
    #[must_use]
    pub fn render_run_log(&self) -> String {
        let (header, records) = self.telemetry();
        telemetry::render_run_log(&header, &records)
    }

    /// Write the JSONL run log to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_run_log(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.render_run_log())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use membound_sim::Device;

    fn small_matrix() -> ExperimentMatrix {
        let mut matrix = ExperimentMatrix::new("test_matrix");
        let spec = Device::MangoPiMqPro.spec();
        let cfg = TransposeConfig::with_block(128, 16);
        for variant in TransposeVariant::all() {
            matrix.push(Cell::transpose(
                "128",
                Device::MangoPiMqPro.label(),
                &spec,
                variant,
                cfg,
            ));
        }
        matrix
    }

    #[test]
    fn engine_runs_a_ladder_and_attaches_speedups() {
        let results = Engine::new(2).run(&small_matrix());
        assert_eq!(results.cells.len(), TransposeVariant::all().len());
        assert_eq!(results.cells[0].speedup_vs_naive, Some(1.0));
        for r in &results.cells {
            assert!(r.report().is_some(), "{}: {:?}", r.cell.variant, r.outcome);
            assert!(r.speedup_vs_naive.unwrap() > 0.0);
        }
    }

    #[test]
    fn does_not_fit_cells_are_reported_not_dropped() {
        let mut matrix = ExperimentMatrix::new("test_overflow");
        let spec = Device::MangoPiMqPro.spec();
        matrix.push(Cell::transpose(
            "16384",
            Device::MangoPiMqPro.label(),
            &spec,
            TransposeVariant::Naive,
            TransposeConfig::new(16384),
        ));
        let results = Engine::new(1).run(&matrix);
        assert_eq!(results.cells[0].outcome, CellOutcome::DoesNotFit);
        assert_eq!(results.cells[0].speedup_vs_naive, None);
    }

    #[test]
    fn run_log_of_a_real_run_validates() {
        let results = Engine::new(2).run(&small_matrix());
        let text = results.render_run_log();
        let summary = crate::telemetry::validate_run_log(&text).expect("valid");
        assert_eq!(summary.cells, results.cells.len() as u64);
        assert_eq!(summary.ok_cells, summary.cells);
        assert_eq!(summary.combined_digest, results.combined_digest());
    }

    #[test]
    fn utilization_attaches_when_a_baseline_is_declared() {
        let mut matrix = small_matrix();
        matrix.stream_baseline(Device::MangoPiMqPro.label(), 2.0);
        let results = Engine::new(2).run(&matrix);
        for r in &results.cells {
            let util = r.bandwidth_utilization.expect("baseline declared");
            assert!(util > 0.0);
        }
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }
}
