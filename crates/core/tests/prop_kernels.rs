//! Property tests for the kernel ladders: every optimized variant is
//! checked against the obviously-correct reference on randomized shapes,
//! and the traced forms obey conservation laws.

use membound_core::{
    blur_native, transpose_native, BlurConfig, BlurVariant, SquareMatrix, StreamOp, StreamTrace,
    TransposeConfig, TransposeTrace, TransposeVariant,
};
use membound_image::generate;
use membound_parallel::Pool;
use membound_trace::TraceBuffer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All five transpose variants produce the exact reference transpose
    /// for arbitrary sizes, block sizes and thread counts.
    #[test]
    fn transpose_variants_match_reference(
        n in 1usize..80,
        block in 1usize..40,
        threads in 1u32..5,
        variant_idx in 0usize..5,
    ) {
        let variant = TransposeVariant::all()[variant_idx];
        let orig = SquareMatrix::indexed(n);
        let mut expected = orig.clone();
        expected.transpose_naive();
        let mut m = orig.clone();
        let cfg = TransposeConfig::with_block(n, block);
        transpose_native(&mut m, variant, cfg, &Pool::new(threads));
        prop_assert!(m == expected, "{variant} n={n} block={block} threads={threads}");
    }

    /// Transposing twice with any two variants is the identity.
    #[test]
    fn transpose_is_an_involution(
        n in 2usize..60,
        a_idx in 0usize..5,
        b_idx in 0usize..5,
    ) {
        let (a, b) = (TransposeVariant::all()[a_idx], TransposeVariant::all()[b_idx]);
        let orig = SquareMatrix::indexed(n);
        let mut m = orig.clone();
        let cfg = TransposeConfig::with_block(n, 16);
        let pool = Pool::new(2);
        transpose_native(&mut m, a, cfg, &pool);
        transpose_native(&mut m, b, cfg, &pool);
        prop_assert!(m == orig);
    }

    /// All blur variants agree with the naive 2-D reference on the
    /// interior for random images and filter sizes.
    #[test]
    fn blur_variants_agree_with_reference(
        h_extra in 2usize..30,
        w_extra in 2usize..30,
        half in 1usize..5,
        seed in any::<u64>(),
        variant_idx in 1usize..5,
    ) {
        let f = 2 * half + 1;
        let cfg = BlurConfig {
            height: f + h_extra + f,
            width: f + w_extra + f,
            channels: 3,
            filter_size: f,
            sigma: None,
        };
        let src = generate::noise(cfg.height, cfg.width, cfg.channels, seed);
        let pool = Pool::new(3);
        let (reference, _) = blur_native(&src, BlurVariant::Naive, &cfg, &pool);
        let variant = BlurVariant::all()[variant_idx];
        let (out, _) = blur_native(&src, variant, &cfg, &pool);
        let diff = reference.max_abs_diff_interior(&out, f);
        prop_assert!(diff < 1e-4, "{variant} diverges by {diff}");
    }

    /// Blur output intensities are convex combinations of the input:
    /// min(src) <= blurred <= max(src) wherever the kernel fully applies.
    #[test]
    fn blur_respects_input_range(seed in any::<u64>()) {
        let cfg = BlurConfig {
            height: 24,
            width: 28,
            channels: 1,
            filter_size: 5,
            sigma: Some(1.4),
        };
        let src = generate::noise(cfg.height, cfg.width, 1, seed);
        let (out, _) = blur_native(&src, BlurVariant::Memory, &cfg, &Pool::new(1));
        let (lo, hi) = src
            .as_slice()
            .iter()
            .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let f = cfg.filter_size;
        for i in f..cfg.height - f {
            for j in f..cfg.width - f {
                let v = out.get(i, j, 0);
                prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "({i},{j}) = {v} outside [{lo},{hi}]");
            }
        }
    }

    /// Traced STREAM byte accounting matches §4.1's 16/24-bytes-per-iter
    /// table for any op and length.
    #[test]
    fn stream_trace_byte_accounting(op_idx in 0usize..4, n in 1u64..2000) {
        let op = StreamOp::all()[op_idx];
        let t = StreamTrace::new(op, n);
        let mut buf = TraceBuffer::new();
        t.trace_pass(&mut buf, 0, n);
        prop_assert_eq!(
            buf.stats().bytes_total(),
            op.nominal_bytes(n),
            "traffic must equal the paper's bytes/iter accounting"
        );
        prop_assert_eq!(buf.stats().compute_iters, n);
    }

    /// Every traced transpose variant touches exactly the same set of
    /// matrix lines (they all transpose the same matrix), regardless of
    /// geometry.
    #[test]
    fn traced_variants_touch_identical_matrix_lines(
        nblk in 1u64..6,
        block in 1u64..24,
    ) {
        let n = (nblk * block) as usize;
        prop_assume!(n > 1);
        let cfg = TransposeConfig::with_block(n, block as usize);
        let t = TransposeTrace::new(cfg);
        let matrix_base = 0x1000_0000_0000u64;
        let matrix_end = matrix_base + cfg.matrix_bytes();
        let lines = |variant: TransposeVariant| {
            let mut buf = TraceBuffer::new();
            t.trace_outer(variant, &mut buf, 0, 0, t.outer_iterations(variant));
            buf.iter()
                .filter(|a| a.addr >= matrix_base && a.addr < matrix_end)
                .map(|a| a.addr / 64)
                .collect::<std::collections::BTreeSet<u64>>()
        };
        let reference = lines(TransposeVariant::Naive);
        for v in TransposeVariant::all() {
            prop_assert_eq!(lines(v), reference.clone(), "{}", v);
        }
    }

    /// Traced transpose compute-iteration totals equal the upper-triangle
    /// element count for the unstaged variants.
    #[test]
    fn traced_swap_counts_are_triangular(n in 2usize..50) {
        let cfg = TransposeConfig::with_block(n, 8);
        let t = TransposeTrace::new(cfg);
        let expected = (n * (n - 1) / 2) as u64;
        for v in [TransposeVariant::Naive, TransposeVariant::Parallel, TransposeVariant::Blocking] {
            let mut buf = TraceBuffer::new();
            t.trace_outer(v, &mut buf, 0, 0, t.outer_iterations(v));
            prop_assert_eq!(buf.stats().compute_iters, expected, "{}", v);
        }
    }

    /// Synthetic generators report consistent footprints (sanity link
    /// between the trace and program layers used by the experiments).
    #[test]
    fn stream_trace_is_range_splittable_at_line_boundaries(
        op_idx in 0usize..4,
        blocks in 1u64..20,
    ) {
        let op = StreamOp::all()[op_idx];
        let n = blocks * 8;
        let t = StreamTrace::new(op, n);
        let mut whole = TraceBuffer::new();
        t.trace_pass(&mut whole, 0, n);
        let mut parts = TraceBuffer::new();
        let mid = (blocks / 2) * 8;
        t.trace_pass(&mut parts, 0, mid);
        t.trace_pass(&mut parts, mid, n);
        prop_assert_eq!(whole.as_slice(), parts.as_slice());
    }
}
