//! Crash-safety and resumption guarantees of the experiment engine
//! (DESIGN.md §11):
//!
//! * a run log truncated at any cell boundary — or mid-line — resumes
//!   to a final log whose digest-bearing fields are byte-identical to
//!   an uninterrupted run's, at every `--jobs` level;
//! * injected panics are retried under `--retries` and recorded with
//!   honest `status`/`attempts` fields when the budget is exhausted;
//! * the per-cell deadline discards late attempts as `timed_out`;
//! * every such log still passes `validate_run_log`.
//!
//! Plus the persistent result cache's crash properties (DESIGN.md §12):
//!
//! * a warm run over a populated cache simulates nothing and is
//!   digest-identical to the cold run, at every `--jobs` level;
//! * a crash injected mid-insert (failpoint site `cache`) never
//!   corrupts the store — the re-run reproduces the clean digests;
//! * corrupted or torn objects are discarded and re-simulated, never
//!   trusted; stale-fingerprint entries never hit; `gc` never removes
//!   a live entry.
//!
//! Fault injection uses in-process `Failpoint`s (panic/delay); the
//! process-abort path needs a process boundary and is exercised by the
//! CI `resume-smoke` and `cache-incremental` steps instead.

use membound_core::cache::{self, ResultCache};
use membound_core::runner::{Cell, CellOutcome, Engine, ExperimentMatrix, RunOptions, RunResults};
use membound_core::telemetry::{parse_partial_run_log, validate_run_log};
use membound_core::{TransposeConfig, TransposeVariant};
use membound_parallel::Failpoint;
use membound_sim::Device;
use proptest::prelude::*;

/// A two-panel transpose ladder on the Mango Pi: 10 cells, all fast.
fn ladder_matrix() -> ExperimentMatrix {
    let mut matrix = ExperimentMatrix::new("crash_resume_test");
    let spec = Device::MangoPiMqPro.spec();
    for n in [96usize, 128] {
        let cfg = TransposeConfig::with_block(n, 16);
        for variant in TransposeVariant::all() {
            matrix.push(Cell::transpose(
                n.to_string(),
                Device::MangoPiMqPro.label(),
                &spec,
                variant,
                cfg,
            ));
        }
    }
    matrix.stream_baseline(Device::MangoPiMqPro.label(), 2.0);
    matrix
}

/// Every digest-bearing line fragment of a rendered run log: cell
/// lines verbatim except the digest-excluded diagnostics
/// (`wall_seconds`, `host_workers`, `attempts`, `provenance`), plus
/// the combined digest. Two runs that agree here are byte-identical in
/// every field the digests vouch for.
fn digest_fields(results: &RunResults) -> Vec<String> {
    let (_, records) = results.telemetry();
    let mut fields: Vec<String> = records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.wall_seconds = 0.0;
            r.attempts = None;
            r.provenance = None;
            if let Some(sim) = &mut r.sim {
                sim.host_workers = None;
            }
            serde_json::to_string(&r).expect("record serializes")
        })
        .collect();
    fields.push(results.combined_digest());
    fields
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("membound_crash_resume");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn resume_from_any_truncation_point_matches_uninterrupted_digests() {
    let matrix = ladder_matrix();
    let uninterrupted = Engine::new(2).run(&matrix);
    let full_log = uninterrupted.render_run_log();
    let expected = digest_fields(&uninterrupted);
    let lines: Vec<&str> = full_log.lines().collect();

    // Truncate after the header, after a mid cell, and one short of
    // complete — then resume at several jobs levels.
    for keep_cells in [0usize, 4, 9] {
        let truncated: String = lines[..=keep_cells]
            .iter()
            .map(|l| format!("{l}\n"))
            .collect();
        let partial = parse_partial_run_log(&truncated).expect("truncated log parses");
        assert_eq!(partial.records.len(), keep_cells);
        for jobs in [1u32, 2, 4] {
            let options = RunOptions {
                resume: Some(partial.clone()),
                ..RunOptions::default()
            };
            let resumed = Engine::new(jobs)
                .run_with(&matrix, &options)
                .expect("resume runs");
            assert_eq!(resumed.restored, keep_cells as u64);
            assert_eq!(
                digest_fields(&resumed),
                expected,
                "resume at cell {keep_cells} with {jobs} jobs"
            );
            let summary = validate_run_log(&resumed.render_run_log()).expect("valid log");
            assert_eq!(summary.combined_digest, uninterrupted.combined_digest());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The serial==parallel digest-identity pattern of
    /// `crates/sim/tests/parallel_cores.rs`, extended across a crash:
    /// for any truncation point and any (original, resume) job-count
    /// pair, resuming reproduces the uninterrupted run's digest fields
    /// bit for bit.
    #[test]
    fn any_cut_and_jobs_pair_resumes_to_identical_digests(
        keep_cells in 0usize..10,
        original_jobs in 1u32..5,
        resume_jobs in 1u32..5,
    ) {
        let matrix = ladder_matrix();
        let original = Engine::new(original_jobs).run(&matrix);
        let log = original.render_run_log();
        let lines: Vec<&str> = log.lines().collect();
        let truncated: String = lines[..=keep_cells]
            .iter()
            .map(|l| format!("{l}\n"))
            .collect();
        let partial = parse_partial_run_log(&truncated).expect("truncated log parses");
        let resumed = Engine::new(resume_jobs)
            .run_with(
                &matrix,
                &RunOptions { resume: Some(partial), ..RunOptions::default() },
            )
            .expect("resume runs");
        prop_assert_eq!(resumed.restored, keep_cells as u64);
        prop_assert_eq!(digest_fields(&resumed), digest_fields(&original));
    }
}

#[test]
fn resume_recovers_from_a_log_torn_mid_line() {
    let matrix = ladder_matrix();
    let uninterrupted = Engine::new(2).run(&matrix);
    let full_log = uninterrupted.render_run_log();
    let lines: Vec<&str> = full_log.lines().collect();
    // Keep the header + 3 whole cells, then half of cell 3's line —
    // the shape a `kill -9` mid-append leaves behind.
    let mut torn: String = lines[..4].iter().map(|l| format!("{l}\n")).collect();
    torn.push_str(&lines[4][..lines[4].len() / 2]);

    let partial = parse_partial_run_log(&torn).expect("torn log parses");
    assert!(partial.truncated_tail, "torn tail detected");
    assert_eq!(partial.records.len(), 3);

    let options = RunOptions {
        resume: Some(partial),
        ..RunOptions::default()
    };
    let resumed = Engine::new(2)
        .run_with(&matrix, &options)
        .expect("resume runs");
    assert_eq!(resumed.restored, 3);
    assert_eq!(digest_fields(&resumed), digest_fields(&uninterrupted));
}

#[test]
fn streamed_log_is_byte_identical_to_the_terminal_render() {
    let matrix = ladder_matrix();
    let path = tmp_path("streamed.jsonl");
    let options = RunOptions {
        stream_log: Some(path.clone()),
        ..RunOptions::default()
    };
    let results = Engine::new(4)
        .run_with(&matrix, &options)
        .expect("streaming run");
    let streamed = std::fs::read_to_string(&path).expect("streamed log exists");
    let rendered = results.render_run_log();
    // The header timestamp differs between the two writes; every cell
    // line must be byte-identical.
    let streamed_cells: Vec<&str> = streamed.lines().skip(1).collect();
    let rendered_cells: Vec<&str> = rendered.lines().skip(1).collect();
    assert_eq!(streamed_cells, rendered_cells);
    validate_run_log(&streamed).expect("streamed log validates");
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_panic_is_retried_to_success() {
    let matrix = ladder_matrix();
    let clean = Engine::new(2).run(&matrix);
    // Cell 4's first attempt panics; the retry must succeed and the
    // digests must not notice.
    let options = RunOptions {
        retries: 2,
        failpoint: Some(Failpoint::parse("cell:panic@4x1").expect("valid spec")),
        ..RunOptions::default()
    };
    let results = Engine::new(2)
        .run_with(&matrix, &options)
        .expect("run with failpoint");
    assert_eq!(results.cells[4].attempts, 2, "one panic, one success");
    assert!(results.cells[4].report().is_some());
    assert_eq!(results.combined_digest(), clean.combined_digest());
    assert_eq!(digest_fields(&results), digest_fields(&clean));
}

#[test]
fn retry_exhaustion_records_a_failed_cell_that_validates() {
    let matrix = ladder_matrix();
    let options = RunOptions {
        retries: 2,
        failpoint: Some(Failpoint::parse("cell:panic@4").expect("valid spec")),
        ..RunOptions::default()
    };
    let results = Engine::new(2)
        .run_with(&matrix, &options)
        .expect("run with failpoint");
    assert_eq!(results.cells[4].attempts, 3, "1 try + 2 retries");
    assert!(
        matches!(&results.cells[4].outcome, CellOutcome::Failed(msg) if msg.contains("failpoint")),
        "got {:?}",
        results.cells[4].outcome
    );
    let text = results.render_run_log();
    assert!(text.contains("\"status\":\"failed\""));
    let summary = validate_run_log(&text).expect("failed cells validate");
    assert_eq!(summary.ok_cells, 9);

    // Without a retry budget the same panic keeps the legacy status.
    let options = RunOptions {
        failpoint: Some(Failpoint::parse("cell:panic@4").expect("valid spec")),
        ..RunOptions::default()
    };
    let results = Engine::new(2)
        .run_with(&matrix, &options)
        .expect("run with failpoint");
    assert_eq!(results.cells[4].attempts, 1);
    assert!(matches!(
        &results.cells[4].outcome,
        CellOutcome::Panicked(_)
    ));
}

#[test]
fn deadline_overrun_records_timed_out() {
    let matrix = ladder_matrix();
    // Cell 4 sleeps 50 ms against a 1 ms deadline; the attempt's result
    // is discarded.
    let options = RunOptions {
        cell_deadline: Some(0.001),
        failpoint: Some(Failpoint::parse("cell:delay=50@4").expect("valid spec")),
        ..RunOptions::default()
    };
    let results = Engine::new(2)
        .run_with(&matrix, &options)
        .expect("run with failpoint");
    assert!(
        matches!(&results.cells[4].outcome, CellOutcome::TimedOut(_)),
        "got {:?}",
        results.cells[4].outcome
    );
    let text = results.render_run_log();
    assert!(text.contains("\"status\":\"timed_out\""));
    validate_run_log(&text).expect("timed_out cells validate");
}

#[test]
fn panicked_and_failed_cells_are_rerun_on_resume() {
    let matrix = ladder_matrix();
    let clean = Engine::new(2).run(&matrix);
    // Produce a log whose cell 4 failed...
    let options = RunOptions {
        failpoint: Some(Failpoint::parse("cell:panic@4").expect("valid spec")),
        ..RunOptions::default()
    };
    let broken = Engine::new(2)
        .run_with(&matrix, &options)
        .expect("run with failpoint");
    let partial =
        parse_partial_run_log(&broken.render_run_log()).expect("complete log parses as partial");
    assert_eq!(partial.records.len(), 10);

    // ...then resume without the failpoint: only cell 4 re-simulates,
    // and the result heals to the uninterrupted digests.
    let options = RunOptions {
        resume: Some(partial),
        ..RunOptions::default()
    };
    let resumed = Engine::new(2)
        .run_with(&matrix, &options)
        .expect("resume runs");
    assert_eq!(resumed.restored, 9, "everything but the panicked cell");
    assert!(resumed.cells[4].report().is_some());
    assert_eq!(digest_fields(&resumed), digest_fields(&clean));
}

/// Backwards compatibility lock-in: the committed schema-v1 fixture
/// (written before `host_workers`/`strided_batches`/`attempts`
/// existed) must keep validating and parsing with the documented
/// migration defaults. CI validates the same file through
/// `membound-cli validate-runlog`.
#[test]
fn committed_v1_fixture_validates_with_migration_defaults() {
    let text = include_str!("fixtures/runlog_v1.jsonl");
    let summary = validate_run_log(text).expect("v1 fixture validates");
    assert_eq!(summary.schema_version, 1);
    assert_eq!(summary.figure, "fig2_transpose");
    assert_eq!(summary.cells, 3);
    assert_eq!(summary.ok_cells, 2);

    let partial = parse_partial_run_log(text).expect("v1 fixture parses");
    assert!(!partial.truncated_tail);
    let sim = partial.records[0].sim.as_ref().expect("ok cell has sim");
    assert_eq!(sim.host_workers, None, "v1 predates host_workers");
    assert_eq!(sim.strided_batches, None, "v1 predates strided_batches");
    assert_eq!(partial.records[0].attempts, None, "v1 predates attempts");
}

#[test]
fn incompatible_resume_logs_are_rejected() {
    let matrix = ladder_matrix();
    let results = Engine::new(1).run(&matrix);
    let log = results.render_run_log();

    // Wrong figure name.
    let mut other = ExperimentMatrix::new("some_other_figure");
    let spec = Device::MangoPiMqPro.spec();
    other.push(Cell::transpose(
        "96",
        Device::MangoPiMqPro.label(),
        &spec,
        TransposeVariant::Naive,
        TransposeConfig::with_block(96, 16),
    ));
    let partial = parse_partial_run_log(&log).expect("log parses");
    let err = Engine::new(1)
        .run_with(
            &other,
            &RunOptions {
                resume: Some(partial.clone()),
                ..RunOptions::default()
            },
        )
        .expect_err("figure mismatch rejected");
    assert!(err.to_string().contains("figure"), "{err}");

    // Right figure, different cell identity at index 0.
    let mut swapped = ExperimentMatrix::new("crash_resume_test");
    for cell in ladder_matrix_cells_reversed() {
        swapped.push(cell);
    }
    let err = Engine::new(1)
        .run_with(
            &swapped,
            &RunOptions {
                resume: Some(partial),
                ..RunOptions::default()
            },
        )
        .expect_err("cell identity mismatch rejected");
    assert!(err.to_string().contains("cell 0"), "{err}");
}

/// A fresh, empty cache directory for one test (removed leftovers from
/// earlier runs of the same test included).
fn cache_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "membound_crash_resume_cache_{name}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn with_cache(cache: ResultCache) -> RunOptions {
    RunOptions {
        cache: Some(cache),
        ..RunOptions::default()
    }
}

#[test]
fn warm_cache_run_simulates_nothing_and_matches_cold_digests() {
    let matrix = ladder_matrix();
    let total = matrix.len() as u64;
    let dir = cache_dir("warm");
    let cold = Engine::new(2)
        .run_with(&matrix, &with_cache(ResultCache::open(&dir).expect("open")))
        .expect("cold run");
    assert_eq!(cold.cached, 0, "empty cache cannot hit");
    let expected = digest_fields(&cold);
    for jobs in [1u32, 2, 4] {
        let warm = Engine::new(jobs)
            .run_with(
                &matrix,
                &with_cache(ResultCache::open(&dir).expect("reopen")),
            )
            .expect("warm run");
        assert_eq!(warm.cached, total, "warm run must simulate nothing");
        assert_eq!(digest_fields(&warm), expected, "warm at {jobs} jobs");
        let summary = validate_run_log(&warm.render_run_log()).expect("cached log validates");
        assert_eq!(summary.cached_cells, total);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_and_torn_cache_objects_are_resimulated_not_trusted() {
    let matrix = ladder_matrix();
    let total = matrix.len() as u64;
    let dir = cache_dir("corrupt");
    let cold = Engine::new(2)
        .run_with(&matrix, &with_cache(ResultCache::open(&dir).expect("open")))
        .expect("cold run");

    // Tear one object mid-payload and overwrite another with garbage —
    // the two shapes a crash or bit rot leaves behind.
    let mut objects: Vec<_> = std::fs::read_dir(dir.join("objects"))
        .expect("objects dir")
        .map(|e| e.expect("entry").path())
        .collect();
    objects.sort();
    let torn_text = std::fs::read_to_string(&objects[0]).expect("read object");
    std::fs::write(&objects[0], &torn_text[..torn_text.len() / 2]).expect("tear object");
    std::fs::write(&objects[1], "garbage\n").expect("corrupt object");
    let damaged = cache::survey(&dir, cache::default_fingerprint()).expect("survey");
    assert_eq!(damaged.corrupt, 2);
    assert!(!damaged.is_clean());

    // The warm run discards both, re-simulates exactly those two cells,
    // and heals the store; the digests never notice.
    let healed = Engine::new(2)
        .run_with(
            &matrix,
            &with_cache(ResultCache::open(&dir).expect("reopen")),
        )
        .expect("healing run");
    assert_eq!(healed.cached, total - 2, "two corrupt entries must miss");
    assert_eq!(digest_fields(&healed), digest_fields(&cold));
    let after = cache::survey(&dir, cache::default_fingerprint()).expect("survey");
    assert!(after.is_clean(), "re-insert healed the store: {after:?}");
    assert_eq!(after.live, total);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resumed_cells_enter_the_cache_and_hit_later() {
    let matrix = ladder_matrix();
    let total = matrix.len() as u64;
    // Crash an uncached run, then resume it *with* a fresh cache: the
    // restored cells must be inserted up front, so a later warm run
    // hits every cell — including the ones this process never
    // simulated.
    let uncached = Engine::new(2).run(&matrix);
    let log = uncached.render_run_log();
    let lines: Vec<&str> = log.lines().collect();
    let truncated: String = lines[..=4].iter().map(|l| format!("{l}\n")).collect();
    let partial = parse_partial_run_log(&truncated).expect("truncated log parses");

    let dir = cache_dir("resume");
    let options = RunOptions {
        resume: Some(partial),
        cache: Some(ResultCache::open(&dir).expect("open")),
        ..RunOptions::default()
    };
    let resumed = Engine::new(2).run_with(&matrix, &options).expect("resume");
    assert_eq!(resumed.restored, 4);
    assert_eq!(resumed.cached, 0, "fresh cache cannot hit");
    assert_eq!(digest_fields(&resumed), digest_fields(&uncached));

    let warm = Engine::new(2)
        .run_with(
            &matrix,
            &with_cache(ResultCache::open(&dir).expect("reopen")),
        )
        .expect("warm run");
    assert_eq!(warm.cached, total, "restored cells must have been cached");
    assert_eq!(digest_fields(&warm), digest_fields(&uncached));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_fingerprint_entries_never_hit_and_gc_never_removes_live() {
    let matrix = ladder_matrix();
    let total = matrix.len() as u64;
    let dir = cache_dir("stale");
    let old = ResultCache::open_with_fingerprint(&dir, "sim-v0+obsolete").expect("open old");
    Engine::new(2)
        .run_with(&matrix, &with_cache(old))
        .expect("run under old fingerprint");

    // Under the current fingerprint every old entry is unreachable: the
    // run misses everything and re-populates alongside them.
    let rerun = Engine::new(2)
        .run_with(&matrix, &with_cache(ResultCache::open(&dir).expect("open")))
        .expect("rerun");
    assert_eq!(rerun.cached, 0, "stale-fingerprint entries must not hit");
    let s = cache::survey(&dir, cache::default_fingerprint()).expect("survey");
    assert_eq!((s.live, s.stale, s.corrupt), (total, total, 0));

    // gc reclaims exactly the stale half and keeps every live entry —
    // proven by the follow-up warm run hitting all of them.
    let out = cache::gc(&dir, cache::default_fingerprint()).expect("gc");
    assert_eq!(out.kept, total);
    assert_eq!(out.removed_stale, total);
    let warm = Engine::new(2)
        .run_with(
            &matrix,
            &with_cache(ResultCache::open(&dir).expect("reopen")),
        )
        .expect("warm run");
    assert_eq!(warm.cached, total, "gc must never remove a live entry");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A crash injected between an object write and its index append
    /// (failpoint site `cache`) at any cell and any jobs level leaves
    /// the store recoverable: the interrupted run's digests already
    /// match the clean run's, the warm re-run reproduces them again,
    /// and the store surveys clean afterwards.
    #[test]
    fn crash_during_cache_insert_is_recoverable_at_any_cell(
        crash_index in 0u64..10,
        jobs in 1u32..5,
    ) {
        let matrix = ladder_matrix();
        let clean = Engine::new(2).run(&matrix);
        let dir = cache_dir(&format!("insert_fp_{crash_index}_{jobs}"));
        let options = RunOptions {
            cache: Some(ResultCache::open(&dir).expect("open")),
            failpoint: Some(
                Failpoint::parse(&format!("cache:panic@{crash_index}")).expect("valid spec"),
            ),
            ..RunOptions::default()
        };
        let crashed = Engine::new(jobs)
            .run_with(&matrix, &options)
            .expect("insert failure degrades to a warning");
        prop_assert_eq!(digest_fields(&crashed), digest_fields(&clean));

        let warm = Engine::new(jobs)
            .run_with(&matrix, &with_cache(ResultCache::open(&dir).expect("reopen")))
            .expect("warm run");
        prop_assert_eq!(digest_fields(&warm), digest_fields(&clean));
        let s = cache::survey(&dir, cache::default_fingerprint()).expect("survey");
        prop_assert!(s.is_clean(), "store must survey clean: {:?}", s);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Forward compatibility lock-in for the cache era: the committed
/// schema-v5 fixture — written by a real `fig2_transpose --resume`
/// run over a partially damaged cache, so it mixes `resume`, `cache`
/// and fresh (absent-provenance) cells — must keep validating, and its
/// digest must stay the fig2/mango baseline *of the f64 era that wrote
/// it* (the fixed-point migration changed the canonical digest once —
/// see the v6 fixture below — but never rewrites history). CI
/// validates the same file through `membound-cli validate-runlog`.
#[test]
fn committed_v5_fixture_validates_with_provenance() {
    let text = include_str!("fixtures/runlog_v5.jsonl");
    let summary = validate_run_log(text).expect("v5 fixture validates");
    assert_eq!(summary.schema_version, 5);
    assert_eq!(summary.figure, "fig2_transpose");
    assert_eq!(summary.cells, 10);
    assert_eq!(summary.ok_cells, 10);
    assert_eq!(summary.cached_cells, 6);
    assert_eq!(summary.resumed_cells, 3);
    assert_eq!(summary.combined_digest, "2d01870fd0d44a44");

    let partial = parse_partial_run_log(text).expect("v5 fixture parses");
    assert!(!partial.truncated_tail);
    let provenance: Vec<Option<&str>> = partial
        .records
        .iter()
        .map(|r| r.provenance.as_deref())
        .collect();
    assert_eq!(
        provenance.iter().filter(|p| **p == Some("resume")).count(),
        3
    );
    assert_eq!(
        provenance.iter().filter(|p| **p == Some("cache")).count(),
        6
    );
    assert_eq!(
        provenance.iter().filter(|p| p.is_none()).count(),
        1,
        "one cell was re-simulated fresh after its object was deleted"
    );
}

/// Lock-in for the fixed-point era: the committed schema-v6 fixture —
/// a real `fig2_transpose` run with the u64 subcycle counters — must
/// keep validating, and its digest must stay the post-migration
/// canonical fig2/mango baseline recorded in BENCH_sim.json v4 (the
/// v5 fixture above pins the digest the f64 model produced).
/// CI validates the same file through `membound-cli validate-runlog`.
#[test]
fn committed_v6_fixture_validates_at_the_migrated_digest() {
    let text = include_str!("fixtures/runlog_v6.jsonl");
    let summary = validate_run_log(text).expect("v6 fixture validates");
    assert_eq!(summary.schema_version, 6);
    assert_eq!(summary.figure, "fig2_transpose");
    assert_eq!(summary.cells, 10);
    assert_eq!(summary.ok_cells, 10);
    assert_eq!(summary.combined_digest, "7bceab43d67f5ae3");

    let partial = parse_partial_run_log(text).expect("v6 fixture parses");
    assert!(!partial.truncated_tail);
    assert!(
        partial.records.iter().all(|r| r.attempts == Some(1)),
        "a clean run records one attempt per cell"
    );
}

/// Multi-process safety (DESIGN.md §12): an engine run inserting into
/// the cache while `gc` rebuilds the index concurrently must lose
/// nothing. The existing `cache` failpoint site parks one insert in
/// its rename→append window (`cache:delay`), a racing thread runs
/// `gc` against the same directory mid-run, and afterwards every live
/// object must be indexed — the exact line the unlocked code dropped.
#[test]
fn gc_concurrent_with_an_inserting_run_keeps_every_index_line() {
    let matrix = ladder_matrix();
    let total = matrix.len() as u64;
    let clean = Engine::new(2).run(&matrix);
    let dir = cache_dir("gc_race");
    // Seed one entry so the racing gc always has an index to rebuild.
    {
        let seeded = Engine::new(1)
            .run_with(&matrix, &with_cache(ResultCache::open(&dir).expect("open")))
            .expect("seed run");
        assert_eq!(seeded.cached, 0);
    }
    std::fs::remove_dir_all(dir.join("objects")).expect("drop seeded objects");
    std::fs::create_dir_all(dir.join("objects")).expect("recreate objects dir");

    let options = RunOptions {
        cache: Some(ResultCache::open(&dir).expect("reopen")),
        failpoint: Some(Failpoint::parse("cache:delay=80@5x1").expect("valid spec")),
        ..RunOptions::default()
    };
    std::thread::scope(|scope| {
        let gc_thread = scope.spawn(|| {
            // Land inside the run (and with any luck inside the delayed
            // insert's window); correctness must not depend on timing.
            std::thread::sleep(std::time::Duration::from_millis(40));
            cache::gc(&dir, cache::default_fingerprint()).expect("concurrent gc")
        });
        let racing = Engine::new(2)
            .run_with(&matrix, &options)
            .expect("run racing gc");
        assert_eq!(digest_fields(&racing), digest_fields(&clean));
        gc_thread.join().expect("gc thread");
    });

    let s = cache::survey(&dir, cache::default_fingerprint()).expect("survey");
    assert_eq!(s.live, total, "{s:?}");
    assert_eq!(
        (s.unindexed, s.dangling, s.index_garbage),
        (0, 0, 0),
        "no insert may lose its index line to a racing gc: {s:?}"
    );
    let warm = Engine::new(2)
        .run_with(
            &matrix,
            &with_cache(ResultCache::open(&dir).expect("warm reopen")),
        )
        .expect("warm run");
    assert_eq!(warm.cached, total, "every racing insert must still hit");
    std::fs::remove_dir_all(&dir).ok();
}

/// The rename-durability half of the torn-object story: the two states
/// an un-fsynced directory entry can leave behind after power loss — a
/// leftover `.tmp` (rename never happened) and an index line whose
/// object vanished (rename rolled back) — must both be survivable.
/// Lookups miss and re-simulate to the clean digests, and `gc` restores
/// a clean survey. (`write_text_atomic` now fsyncs the parent directory
/// after rename precisely to make the second state unreachable on
/// crash-consistent filesystems; this test pins the recovery path for
/// storage where the fsync is a no-op.)
#[test]
fn lost_rename_and_leftover_temp_are_survivable() {
    let matrix = ladder_matrix();
    let total = matrix.len() as u64;
    let dir = cache_dir("lost_rename");
    let cold = Engine::new(2)
        .run_with(&matrix, &with_cache(ResultCache::open(&dir).expect("open")))
        .expect("cold run");

    // Roll back one rename (object gone, index line dangling) and leave
    // one interrupted temp behind.
    let mut objects: Vec<_> = std::fs::read_dir(dir.join("objects"))
        .expect("objects dir")
        .map(|e| e.expect("entry").path())
        .collect();
    objects.sort();
    std::fs::remove_file(&objects[0]).expect("roll back a rename");
    std::fs::write(dir.join("objects").join(".x.json.tmp"), "half").expect("leftover temp");

    let s = cache::survey(&dir, cache::default_fingerprint()).expect("survey");
    assert_eq!((s.live, s.dangling, s.temps), (total - 1, 1, 1), "{s:?}");
    assert!(s.is_clean(), "a lost rename is damage, not corruption");

    // The warm run misses exactly the vanished cell and heals it.
    let healed = Engine::new(2)
        .run_with(
            &matrix,
            &with_cache(ResultCache::open(&dir).expect("reopen")),
        )
        .expect("healing run");
    assert_eq!(healed.cached, total - 1, "the vanished object must miss");
    assert_eq!(digest_fields(&healed), digest_fields(&cold));

    let g = cache::gc(&dir, cache::default_fingerprint()).expect("gc");
    assert_eq!(g.removed_temps, 1);
    let s = cache::survey(&dir, cache::default_fingerprint()).expect("survey");
    assert_eq!(
        (s.live, s.dangling, s.temps, s.unindexed),
        (total, 0, 0, 0),
        "gc rebuilt a fully consistent store: {s:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The ladder's cells in reverse order — same figure name and count,
/// different per-index identity.
fn ladder_matrix_cells_reversed() -> Vec<Cell> {
    let spec = Device::MangoPiMqPro.spec();
    let mut cells = Vec::new();
    for n in [96usize, 128] {
        let cfg = TransposeConfig::with_block(n, 16);
        for variant in TransposeVariant::all() {
            cells.push(Cell::transpose(
                n.to_string(),
                Device::MangoPiMqPro.label(),
                &spec,
                variant,
                cfg,
            ));
        }
    }
    cells.reverse();
    cells
}
