//! Engine-level guarantees of `membound_core::runner`:
//!
//! * parallel and serial execution of the same matrix produce identical
//!   per-cell simulated statistics (property-tested over workloads and
//!   job counts);
//! * a panicking cell is contained — it becomes `CellOutcome::Panicked`
//!   and the surrounding cells and the run log are unaffected.

use membound_core::runner::{Cell, CellOutcome, Engine, ExperimentMatrix};
use membound_core::telemetry::validate_run_log;
use membound_core::{TransposeConfig, TransposeVariant};
use membound_sim::Device;
use proptest::prelude::*;

/// The full transpose ladder on every device whose memory fits `n`.
fn ladder_matrix(n: usize, block: usize) -> ExperimentMatrix {
    let mut matrix = ExperimentMatrix::new("runner_parallel_test");
    let cfg = TransposeConfig::with_block(n, block);
    for device in Device::all() {
        let spec = device.spec();
        for variant in TransposeVariant::all() {
            matrix.push(Cell::transpose(
                n.to_string(),
                device.label(),
                &spec,
                variant,
                cfg,
            ));
        }
    }
    matrix
}

/// Everything a cell result claims about the *simulation* (host wall
/// time deliberately excluded — it is the only field allowed to vary
/// with the job count).
fn simulated_fingerprint(results: &membound_core::runner::RunResults) -> Vec<String> {
    results
        .cells
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                CellOutcome::Report(rep) => format!("report:{:016x}", rep.stats_digest()),
                CellOutcome::Gbps(g) => format!("gbps:{}", g.to_bits()),
                CellOutcome::DoesNotFit => "does_not_fit".into(),
                CellOutcome::Panicked(msg) => format!("panicked:{msg}"),
                CellOutcome::Failed(msg) => format!("failed:{msg}"),
                CellOutcome::TimedOut(msg) => format!("timed_out:{msg}"),
                CellOutcome::Restored(rec) => format!("restored:{}", rec.stats_digest),
                // These runs never pass a cache, so a cached outcome
                // would itself be a determinism bug worth failing on.
                CellOutcome::Cached(c) => unreachable!("uncached run produced {c:?}"),
            };
            format!(
                "{}/{}/{} {} speedup={:?} util={:?}",
                r.cell.panel,
                r.cell.device,
                r.cell.variant,
                outcome,
                r.speedup_vs_naive.map(f64::to_bits),
                r.bandwidth_utilization.map(f64::to_bits),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ISSUE acceptance: any parallel run is bit-identical to the serial
    /// run of the same matrix, for every simulated quantity.
    #[test]
    fn parallel_runs_match_serial_bit_for_bit(
        n in 64usize..256,
        block in 8usize..32,
        jobs in 2u32..8,
    ) {
        let matrix = ladder_matrix(n, block);
        let serial = Engine::new(1).run(&matrix);
        let parallel = Engine::new(jobs).run(&matrix);

        prop_assert_eq!(
            simulated_fingerprint(&serial),
            simulated_fingerprint(&parallel)
        );
        prop_assert_eq!(serial.combined_digest(), parallel.combined_digest());
    }
}

#[test]
fn panicking_cell_is_contained_and_logged() {
    // `block: 0` bypasses the constructor's validation, so the blocked
    // simulation divides by zero inside the worker thread.
    let poisoned = TransposeConfig { n: 64, block: 0 };
    let good = TransposeConfig::with_block(64, 16);
    let spec = Device::MangoPiMqPro.spec();
    let label = Device::MangoPiMqPro.label();

    let mut matrix = ExperimentMatrix::new("panic_containment");
    matrix
        .push(Cell::transpose(
            "64",
            label,
            &spec,
            TransposeVariant::Naive,
            good,
        ))
        .push(Cell::transpose(
            "64",
            label,
            &spec,
            TransposeVariant::Blocking,
            poisoned,
        ))
        .push(Cell::transpose(
            "64",
            label,
            &spec,
            TransposeVariant::ManualBlocking,
            good,
        ));

    for jobs in [1, 4] {
        let results = Engine::new(jobs).run(&matrix);
        assert_eq!(results.cells.len(), 3);
        assert!(
            results.cells[0].report().is_some(),
            "good cell before the panic"
        );
        assert!(
            matches!(&results.cells[1].outcome, CellOutcome::Panicked(msg) if !msg.is_empty()),
            "poisoned cell must surface as Panicked, got {:?}",
            results.cells[1].outcome
        );
        assert!(
            results.cells[2].report().is_some(),
            "good cell after the panic"
        );

        // Speedups still attach across the ladder's surviving cells.
        assert_eq!(results.cells[0].speedup_vs_naive, Some(1.0));
        assert!(results.cells[2].speedup_vs_naive.is_some());
        assert_eq!(results.cells[1].speedup_vs_naive, None);

        // The run log stays schema-valid and reports the failure.
        let summary = validate_run_log(&results.render_run_log()).expect("valid log");
        assert_eq!(summary.cells, 3);
        assert_eq!(summary.ok_cells, 2);
    }
}

#[test]
fn job_counts_beyond_cell_count_are_harmless() {
    let matrix = ladder_matrix(96, 16);
    let baseline = Engine::new(1).run(&matrix);
    let oversubscribed = Engine::new(64).run(&matrix);
    assert_eq!(
        simulated_fingerprint(&baseline),
        simulated_fingerprint(&oversubscribed)
    );
}
